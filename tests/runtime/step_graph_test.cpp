// chaos::StepGraph tests: the dependence edge cases of the declarative
// executor, each proven bitwise-equivalent to the eager post/flush/wait
// path — same-array gather-after-scatter (RAW), scatter-after-gather
// (WAR), disjoint arrays pipelining freely, a repartition landing
// mid-pipeline (seeded successor epoch, retarget re-arm), migrate steps,
// per-step traffic attribution, and the stale-binding guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/step_graph.hpp"
#include "support/equivalence.hpp"

namespace chaos {
namespace {

using core::GlobalIndex;
using sim::Comm;
using sim::Machine;
using testing_support::spans_equal;

constexpr int kRanks = 4;
constexpr GlobalIndex kN = 48;

/// Deterministic per-rank reference stream: `count` globals fanning out
/// from this rank's slice with stride, so every rank has off-rank refs.
std::vector<GlobalIndex> make_refs(int rank, int salt, int count = 8) {
  std::vector<GlobalIndex> refs;
  for (int k = 0; k < count; ++k)
    refs.push_back((static_cast<GlobalIndex>(rank) * (kN / kRanks) +
                    3 * k + salt + 5) %
                   kN);
  return refs;
}

struct IdVal {
  GlobalIndex id;
  double v;
};

/// Gather one distributed array's owned values into global-id order on
/// every rank (test-support collective).
std::vector<double> collect(Comm& c, std::span<const GlobalIndex> globals,
                            std::span<const double> vals) {
  std::vector<IdVal> mine(globals.size());
  for (std::size_t i = 0; i < globals.size(); ++i)
    mine[i] = IdVal{globals[i], vals[i]};
  std::vector<IdVal> all = c.allgatherv<IdVal>(mine);
  std::vector<double> out(static_cast<std::size_t>(kN), 0.0);
  for (const IdVal& iv : all) out[static_cast<std::size_t>(iv.id)] = iv.v;
  return out;
}

// ---- two disjoint array pairs: free pipelining -----------------------------

struct PairCycleResult {
  std::vector<double> xa, ya, xb, yb;
  StepGraph::Stats stats;
  comm::Engine::Traffic step_a_gather, step_a_write, step_b_gather;
};

/// Two independent gather/compute/scatter-add steps over disjoint array
/// pairs (xa,ya) and (xb,yb), plus a local advance step — the shape whose
/// communication the pipelined graph may fully overlap.
PairCycleResult run_pair_cycle(bool pipelining, int iters) {
  PairCycleResult out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    const std::vector<GlobalIndex> globals = rt.owned_globals(d);

    lang::IndirectionArray ind_a(make_refs(c.rank(), 0));
    lang::IndirectionArray ind_b(make_refs(c.rank(), 11));
    const LoopHandle loop_a = rt.bind(d, ind_a);
    const LoopHandle loop_b = rt.bind(d, ind_b);
    const ScheduleHandle ha = rt.inspect(loop_a);
    const ScheduleHandle hb = rt.inspect(loop_b);
    const std::span<const GlobalIndex> lrefs_a = rt.local_refs(loop_a);
    const std::span<const GlobalIndex> lrefs_b = rt.local_refs(loop_b);

    const auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> xa(extent, 0.0), ya(extent, 0.0);
    std::vector<double> xb(extent, 0.0), yb(extent, 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i) {
      xa[i] = 1.0 + static_cast<double>(globals[i]);
      xb[i] = 2.0 + 0.5 * static_cast<double>(globals[i]);
    }

    StepGraph g(rt);
    g.set_pipelining(pipelining);
    g.step("a")
        .reads(xa, ha)
        .compute([&] {
          std::fill(ya.begin(), ya.end(), 0.0);
          for (GlobalIndex j : lrefs_a)
            ya[static_cast<std::size_t>(j)] +=
                xa[static_cast<std::size_t>(j)] + 1.0;
        })
        .writes_add(ya, ha);
    g.step("b")
        .reads(xb, hb)
        .compute([&] {
          std::fill(yb.begin(), yb.end(), 0.0);
          for (GlobalIndex j : lrefs_b)
            yb[static_cast<std::size_t>(j)] +=
                0.5 * xb[static_cast<std::size_t>(j)];
        })
        .writes_add(yb, hb);
    g.step("advance")
        .uses(ya)
        .uses(yb)
        .updates(xa)
        .updates(xb)
        .compute([&] {
          for (std::size_t i = 0; i < globals.size(); ++i) {
            xa[i] = 0.5 * xa[i] + 0.25 * ya[i] + 0.125;
            xb[i] = 0.75 * xb[i] + 0.125 * yb[i] + 0.0625;
          }
        });

    rt.run(g, iters);

    // collect() is collective (every rank calls it), but only rank 0 may
    // write the shared result struct — the rank threads run concurrently.
    std::vector<double> xa_all = collect(c, globals, {xa.data(), globals.size()});
    std::vector<double> ya_all = collect(c, globals, {ya.data(), globals.size()});
    std::vector<double> xb_all = collect(c, globals, {xb.data(), globals.size()});
    std::vector<double> yb_all = collect(c, globals, {yb.data(), globals.size()});
    if (c.rank() == 0) {
      out.xa = std::move(xa_all);
      out.ya = std::move(ya_all);
      out.xb = std::move(xb_all);
      out.yb = std::move(yb_all);
      out.stats = g.stats();
      out.step_a_gather = g.at(0).gather_traffic();
      out.step_a_write = g.at(0).write_traffic();
      out.step_b_gather = g.at(1).gather_traffic();
    }
  });
  return out;
}

TEST(StepGraph, DisjointArraysPipelineFreelyAndBitwiseMatchEager) {
  const auto pipelined = run_pair_cycle(/*pipelining=*/true, 5);
  const auto eager = run_pair_cycle(/*pipelining=*/false, 5);

  EXPECT_TRUE(spans_equal(pipelined.xa, eager.xa, "xa"));
  EXPECT_TRUE(spans_equal(pipelined.ya, eager.ya, "ya"));
  EXPECT_TRUE(spans_equal(pipelined.xb, eager.xb, "xb"));
  EXPECT_TRUE(spans_equal(pipelined.yb, eager.yb, "yb"));

  // The pipelined arm overlapped: step b's gathers (and the next
  // iteration's) hoisted ahead of their step, and scatter batches posted
  // while another step's gathers were outstanding.
  EXPECT_GT(pipelined.stats.pipelined_gathers, 0u);
  EXPECT_GT(pipelined.stats.overlapped_posts, 0u);
  EXPECT_EQ(eager.stats.pipelined_gathers, 0u);
  EXPECT_EQ(eager.stats.overlapped_posts, 0u);
  // The advance step's reads of ya/yb force the scatters to deliver first.
  EXPECT_GT(pipelined.stats.hazard_stalls, 0u);
}

TEST(StepGraph, AttributesTrafficToIndividualSteps) {
  const auto r = run_pair_cycle(/*pipelining=*/true, 3);
  EXPECT_GT(r.step_a_gather.messages, 0u);
  EXPECT_GT(r.step_a_gather.bytes, 0u);
  EXPECT_GT(r.step_a_write.messages, 0u);
  EXPECT_GT(r.step_b_gather.messages, 0u);
  // Different schedules, different ghost sets: the attribution is
  // per-step, not a copy of the engine total.
  EXPECT_NE(r.step_a_gather.bytes, r.step_b_gather.bytes);
}

// ---- same-array RAW: gather-after-scatter ----------------------------------

struct SameArrayResult {
  std::vector<double> x, y;
  StepGraph::Stats stats;
};

/// Step 1 scatters x (replacement writes of its ghost slots), step 2
/// gathers x — a RAW dependence through the same array that must
/// serialize: the gather may not pack owned x until the scatter delivered.
SameArrayResult run_raw_cycle(bool pipelining, int iters) {
  SameArrayResult out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    const std::vector<GlobalIndex> globals = rt.owned_globals(d);

    lang::IndirectionArray ind1(make_refs(c.rank(), 3, 6));
    lang::IndirectionArray ind2(make_refs(c.rank(), 17, 6));
    const LoopHandle loop1 = rt.bind(d, ind1);
    const LoopHandle loop2 = rt.bind(d, ind2);
    const ScheduleHandle h1 = rt.inspect(loop1);
    const ScheduleHandle h2 = rt.inspect(loop2);
    const std::span<const GlobalIndex> lrefs1 = rt.local_refs(loop1);
    const std::span<const GlobalIndex> lrefs2 = rt.local_refs(loop2);

    const auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> x(extent, 0.0), y(extent, 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i)
      x[i] = 3.0 + static_cast<double>(globals[i]);

    StepGraph g(rt);
    g.set_pipelining(pipelining);
    g.step("write_x")
        .compute([&] {
          for (GlobalIndex j : lrefs1)
            x[static_cast<std::size_t>(j)] =
                0.75 * x[static_cast<std::size_t>(j)] + 2.0;
        })
        .writes(x, h1);
    g.step("read_x")
        .reads(x, h2)
        .updates(y)
        .compute([&] {
          for (GlobalIndex j : lrefs2)
            y[static_cast<std::size_t>(j % static_cast<GlobalIndex>(
                                               globals.size()))] +=
                0.5 * x[static_cast<std::size_t>(j)];
        });

    rt.run(g, iters);

    std::vector<double> x_all = collect(c, globals, {x.data(), globals.size()});
    std::vector<double> y_all = collect(c, globals, {y.data(), globals.size()});
    if (c.rank() == 0) {
      out.x = std::move(x_all);
      out.y = std::move(y_all);
      out.stats = g.stats();
    }
  });
  return out;
}

TEST(StepGraph, GatherAfterScatterSameArraySerializesBitwise) {
  const auto pipelined = run_raw_cycle(/*pipelining=*/true, 5);
  const auto eager = run_raw_cycle(/*pipelining=*/false, 5);
  EXPECT_TRUE(spans_equal(pipelined.x, eager.x, "x"));
  EXPECT_TRUE(spans_equal(pipelined.y, eager.y, "y"));
  // RAW through x: the gather is never hoisted (the intervening scatter
  // blocks the arm), and posting it forces the scatter to deliver first.
  EXPECT_EQ(pipelined.stats.pipelined_gathers, 0u);
  EXPECT_GT(pipelined.stats.hazard_stalls, 0u);
}

// ---- same-array WAR: scatter-after-gather ----------------------------------

/// Step 1 gathers x, step 2 scatters x. Within an iteration the step
/// order resolves it; the cross-iteration arm of step 1's gather must not
/// hoist above step 2's outstanding scatter.
SameArrayResult run_war_cycle(bool pipelining, int iters) {
  SameArrayResult out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    const std::vector<GlobalIndex> globals = rt.owned_globals(d);

    lang::IndirectionArray ind1(make_refs(c.rank(), 7, 6));
    lang::IndirectionArray ind2(make_refs(c.rank(), 23, 6));
    const LoopHandle loop1 = rt.bind(d, ind1);
    const LoopHandle loop2 = rt.bind(d, ind2);
    const ScheduleHandle h1 = rt.inspect(loop1);
    const ScheduleHandle h2 = rt.inspect(loop2);
    const std::span<const GlobalIndex> lrefs1 = rt.local_refs(loop1);
    const std::span<const GlobalIndex> lrefs2 = rt.local_refs(loop2);

    const auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> x(extent, 0.0), y(extent, 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i)
      x[i] = 1.5 * static_cast<double>(globals[i]) + 1.0;

    StepGraph g(rt);
    g.set_pipelining(pipelining);
    g.step("read_x")
        .reads(x, h1)
        .updates(y)
        .compute([&] {
          for (GlobalIndex j : lrefs1)
            y[static_cast<std::size_t>(j % static_cast<GlobalIndex>(
                                               globals.size()))] +=
                0.25 * x[static_cast<std::size_t>(j)];
        });
    g.step("write_x")
        .compute([&] {
          for (GlobalIndex j : lrefs2)
            x[static_cast<std::size_t>(j)] =
                0.5 * x[static_cast<std::size_t>(j)] + 1.0;
        })
        .writes(x, h2);

    rt.run(g, iters);

    std::vector<double> x_all = collect(c, globals, {x.data(), globals.size()});
    std::vector<double> y_all = collect(c, globals, {y.data(), globals.size()});
    if (c.rank() == 0) {
      out.x = std::move(x_all);
      out.y = std::move(y_all);
      out.stats = g.stats();
    }
  });
  return out;
}

TEST(StepGraph, ScatterAfterGatherSameArraySerializesBitwise) {
  const auto pipelined = run_war_cycle(/*pipelining=*/true, 5);
  const auto eager = run_war_cycle(/*pipelining=*/false, 5);
  EXPECT_TRUE(spans_equal(pipelined.x, eager.x, "x"));
  EXPECT_TRUE(spans_equal(pipelined.y, eager.y, "y"));
  EXPECT_EQ(pipelined.stats.pipelined_gathers, 0u);
}

// ---- reader in the hoist window --------------------------------------------

/// A step that only READS an array (uses(), no gather of its own) must
/// still block hoisting a later step's gather of that array across it:
/// the hoisted gather's early FIFO delivery would hand the reader ghost
/// values one owned-write fresher than the eager schedule provides.
SameArrayResult run_reader_window_cycle(bool pipelining, int iters) {
  SameArrayResult out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    const std::vector<GlobalIndex> globals = rt.owned_globals(d);

    lang::IndirectionArray ind_x(make_refs(c.rank(), 5, 6));
    lang::IndirectionArray ind_b(make_refs(c.rank(), 19, 6));
    const LoopHandle loop_x = rt.bind(d, ind_x);
    const LoopHandle loop_b = rt.bind(d, ind_b);
    const ScheduleHandle hx = rt.inspect(loop_x);
    const ScheduleHandle hb = rt.inspect(loop_b);
    const std::span<const GlobalIndex> lrefs_x = rt.local_refs(loop_x);
    const std::span<const GlobalIndex> lrefs_b = rt.local_refs(loop_b);

    const auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> x(extent, 0.0), b(extent, 0.0);
    std::vector<double> acc(globals.size(), 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i)
      x[i] = static_cast<double>(globals[i]);

    StepGraph g(rt);
    g.set_pipelining(pipelining);
    // Writes owned x: the values a hoisted refresh-gather would pack.
    g.step("bump").updates(x).compute([&] {
      for (std::size_t i = 0; i < globals.size(); ++i) x[i] += 1.0;
    });
    // Unrelated scatter whose hazard wait drains the batch FIFO — the
    // channel through which a hoisted gather would deliver early.
    g.step("side")
        .compute([&] {
          std::fill(b.begin(), b.end(), 0.0);
          for (GlobalIndex j : lrefs_b)
            b[static_cast<std::size_t>(j)] += 1.0;
        })
        .writes_add(b, hb);
    // Reads x's GHOST slots — under the eager schedule these are the
    // previous refresh's (pre-bump) values.
    g.step("readghost").uses(b).uses(x).updates(acc).compute([&] {
      for (std::size_t i = 0; i < lrefs_x.size(); ++i)
        acc[i % acc.size()] += x[static_cast<std::size_t>(lrefs_x[i])];
    });
    // The refresh: gathers post-bump ghosts for the next iteration.
    g.step("refresh").reads(x, hx).compute([] {});

    rt.run(g, iters);

    std::vector<double> x_all = collect(c, globals, {x.data(), globals.size()});
    std::vector<double> y_all = collect(c, globals, {acc.data(), globals.size()});
    if (c.rank() == 0) {
      out.x = std::move(x_all);
      out.y = std::move(y_all);
      out.stats = g.stats();
    }
  });
  return out;
}

TEST(StepGraph, ReaderInHoistWindowBlocksEarlyGatherDelivery) {
  const auto pipelined = run_reader_window_cycle(/*pipelining=*/true, 3);
  const auto eager = run_reader_window_cycle(/*pipelining=*/false, 3);
  EXPECT_TRUE(spans_equal(pipelined.x, eager.x, "x"));
  EXPECT_TRUE(spans_equal(pipelined.y, eager.y, "acc"));
}

// ---- repartition landing mid-pipeline --------------------------------------

struct RepartResult {
  std::vector<double> x, y;
};

/// Run the (x,y) gather/scatter-add cycle over an irregular epoch, then —
/// with the pipeline hot (hoisted gathers and trailing scatters in
/// flight) — repartition to a successor epoch, retarget the graph, remap
/// the arrays, and keep advancing. `reuse` selects the PR-3 seeded
/// successor path vs a cold rebuild (both must agree bitwise).
RepartResult run_repart_cycle(bool pipelining, bool reuse, int iters) {
  RepartResult out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    rt.set_cross_epoch_reuse(reuse);
    std::vector<int> map(static_cast<std::size_t>(kN));
    for (GlobalIndex i = 0; i < kN; ++i)
      map[static_cast<std::size_t>(i)] = static_cast<int>(i) % kRanks;
    DistHandle d = rt.adopt(lang::Distribution::irregular(c, map));
    std::vector<GlobalIndex> globals = rt.owned_globals(d);

    lang::IndirectionArray ind(make_refs(c.rank(), 9));
    ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    std::span<const GlobalIndex> lrefs = rt.local_refs(rt.bind(d, ind));

    auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> x(extent, 0.0), y(extent, 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i)
      x[i] = 4.0 + static_cast<double>(globals[i]);

    StepGraph g(rt);
    g.set_pipelining(pipelining);
    g.step("force")
        .reads(x, h)
        .compute([&] {
          std::fill(y.begin(), y.end(), 0.0);
          for (GlobalIndex j : lrefs)
            y[static_cast<std::size_t>(j)] +=
                0.5 * x[static_cast<std::size_t>(j)] + 1.0;
        })
        .writes_add(y, h);
    g.step("advance").uses(y).updates(x).compute([&] {
      for (std::size_t i = 0; i < globals.size(); ++i)
        x[i] = 0.5 * x[i] + 0.25 * y[i];
    });

    for (int it = 0; it < iters; ++it) {
      if (it == iters / 2) {
        // Mid-pipeline repartition: the previous advance left hoisted
        // gathers (pipelined arm) in flight. Build the successor epoch
        // while they fly; retarget() quiesces before any array is read.
        std::vector<int> map2(static_cast<std::size_t>(kN));
        for (GlobalIndex i = 0; i < kN; ++i)
          map2[static_cast<std::size_t>(i)] =
              static_cast<int>((i / 3 + 1)) % kRanks;
        const DistHandle d2 = rt.repartition(d, map2);
        const ScheduleHandle remap = rt.plan_remap(d, d2);
        const ScheduleHandle h2 = rt.inspect(rt.bind(d2, ind));
        g.retarget(h, h2);  // quiesces the hot pipeline, swaps bindings

        std::vector<double> x2 = rt.remap<double>(
            remap, std::span<const double>{x.data(), globals.size()});
        const std::span<const GlobalIndex> lrefs2 =
            rt.local_refs(rt.bind(d2, ind));
        rt.retire(d);
        d = d2;
        globals = rt.owned_globals(d);
        extent = static_cast<std::size_t>(rt.local_extent(d));
        x.assign(extent, 0.0);
        std::copy(x2.begin(), x2.end(), x.begin());
        y.assign(extent, 0.0);
        h = h2;
        lrefs = lrefs2;
      }
      g.advance();
    }
    g.quiesce();

    std::vector<double> x_all = collect(c, globals, {x.data(), globals.size()});
    std::vector<double> y_all = collect(c, globals, {y.data(), globals.size()});
    if (c.rank() == 0) {
      out.x = std::move(x_all);
      out.y = std::move(y_all);
    }
  });
  return out;
}

TEST(StepGraph, RepartitionMidPipelineStaysBitwiseEquivalent) {
  const auto pipelined = run_repart_cycle(true, /*reuse=*/true, 6);
  const auto eager = run_repart_cycle(false, /*reuse=*/true, 6);
  EXPECT_TRUE(spans_equal(pipelined.x, eager.x, "x (pipelined vs eager)"));
  EXPECT_TRUE(spans_equal(pipelined.y, eager.y, "y (pipelined vs eager)"));

  // The seeded successor epoch behaves exactly like a cold rebuild under
  // the graph too (the PR-3 guarantee carried onto the new executor).
  const auto cold = run_repart_cycle(true, /*reuse=*/false, 6);
  EXPECT_TRUE(spans_equal(pipelined.x, cold.x, "x (seeded vs cold)"));
  EXPECT_TRUE(spans_equal(pipelined.y, cold.y, "y (seeded vs cold)"));
}

// ---- migrate steps ---------------------------------------------------------

struct Item {
  GlobalIndex id;
  double v;
};

TEST(StepGraph, MigrateStepMovesItemsAndRunsFinalizer) {
  // A declared migration: items round-robin to the next rank each
  // iteration; the finalizer swaps the arrival buffer in when the motion
  // completes (deferred, under pipelining, to the next dependent step).
  for (const bool pipelining : {true, false}) {
    std::vector<GlobalIndex> ids_seen;
    Machine m(kRanks);
    m.run([&](Comm& c) {
      Runtime rt(c);
      std::vector<Item> items;
      for (int k = 0; k < 5; ++k)
        items.push_back(Item{static_cast<GlobalIndex>(c.rank() * 100 + k),
                             static_cast<double>(k)});
      std::vector<int> dest;
      std::vector<Item> arrived;

      StepGraph g(rt);
      g.set_pipelining(pipelining);
      g.step("tally").updates(items).compute([&] {
        for (Item& q : items) q.v += 1.0;
      });
      g.step("move")
          .updates(items)
          .updates(dest)
          .compute([&] {
            dest.resize(items.size());
            for (std::size_t i = 0; i < items.size(); ++i)
              dest[i] = (c.rank() + 1 + static_cast<int>(i)) % c.size();
            arrived.clear();
          })
          .migrates(items, dest, arrived)
          .then([&] {
            items = std::move(arrived);
            arrived = std::vector<Item>{};
          });

      rt.run(g, 4);

      // Conservation: every item exists exactly once machine-wide, and
      // each was tallied once per iteration.
      std::vector<Item> all = c.allgatherv<Item>(items);
      if (c.rank() == 0) {
        std::sort(all.begin(), all.end(),
                  [](const Item& a, const Item& b) { return a.id < b.id; });
        for (const Item& q : all) {
          ids_seen.push_back(q.id);
          EXPECT_DOUBLE_EQ(q.v,
                           static_cast<double>(q.id % 100) + 4.0);
        }
      }
    });
    ASSERT_EQ(ids_seen.size(), static_cast<std::size_t>(kRanks * 5));
    for (int r = 0; r < kRanks; ++r)
      for (int k = 0; k < 5; ++k)
        EXPECT_EQ(ids_seen[static_cast<std::size_t>(r * 5 + k)],
                  static_cast<GlobalIndex>(r * 100 + k));
  }
}

// ---- guards ----------------------------------------------------------------

TEST(StepGraph, AdvanceRejectsStaleBindingsAfterRepartition) {
  Machine m(1);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(8);
    lang::IndirectionArray ind(std::vector<GlobalIndex>{0, 3, 7});
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    std::vector<double> x(static_cast<std::size_t>(rt.local_extent(d)), 1.0);

    StepGraph g(rt);
    g.step("s").reads(x, h).compute([] {});
    g.advance();
    g.quiesce();

    const DistHandle d2 = rt.repartition(d, std::vector<int>(8, 0));
    (void)d2;
    rt.retire(d);
    EXPECT_THROW(g.advance(), Error);  // must retarget, not limp on
  });
}

// ---- arrival-driven chunked execution --------------------------------------

/// How the chunked halo step writes its outputs:
///   kDisjointByPeer   each chunk writes only the y slots its peer owns
///                     (declared chunk_writes_disjoint — the
///                     order-independent arm, bitwise oracle applies)
///   kConflictedShared every chunk folds into a shared accumulator window
///                     (undeclared → conservatively conflicted; arrival
///                     execution requires a tolerance)
enum class ChunkShape { kDisjointByPeer, kConflictedShared };

struct ChunkedResult {
  std::vector<double> x, y;
  /// Summed over ranks (rank-0 slot after an allreduce).
  std::uint64_t chunks_fired_early = 0;
  std::uint64_t color_classes = 0;
};

/// The table10 workload at test size: a local step with a rotating slow
/// rank (so gather replies leave late and arrival order varies), then a
/// chunked halo step keyed by the gather schedule's recv peers. With
/// `perm_spread > 0` the mailbox delivery-permutation hook additionally
/// shuffles modeled arrival times per (src, tag).
ChunkedResult run_chunked_halo(bool arrival, ChunkShape shape, int iters,
                               std::optional<EquivalenceTolerance> tol = {},
                               std::uint64_t perm_seed = 0,
                               double perm_spread = 0.0) {
  ChunkedResult out;
  Machine m(kRanks);
  m.set_delivery_permutation(perm_seed, perm_spread);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    const std::vector<GlobalIndex> globals = rt.owned_globals(d);
    const GlobalIndex nper = kN / kRanks;

    // References into every other rank's slice: one recv block per peer,
    // so the chunk plan splits kRanks ways (local + kRanks-1 peers).
    std::vector<GlobalIndex> refs;
    for (int p = 0; p < kRanks; ++p) {
      if (p == c.rank()) continue;
      for (int k = 0; k < 4; ++k)
        refs.push_back(static_cast<GlobalIndex>(p) * nper +
                       (static_cast<GlobalIndex>(3 * k + c.rank()) % nper));
    }
    lang::IndirectionArray ind(refs);
    const LoopHandle loop = rt.bind(d, ind);
    const ScheduleHandle h = rt.inspect(loop);
    const std::span<const GlobalIndex> lrefs = rt.local_refs(loop);

    const auto extent = static_cast<std::size_t>(rt.local_extent(d));
    std::vector<double> x(extent, 0.0), y(extent, 0.0);
    for (std::size_t i = 0; i < globals.size(); ++i)
      x[i] = 1.0 + 0.5 * static_cast<double>(globals[i]);

    // Ghost slot -> owning peer: keys each localized ref to its chunk.
    std::vector<int> slot_peer(extent, -1);
    for (const core::ScheduleBlock& b : rt.schedule(h).recv_blocks()) {
      if (b.proc == c.rank()) continue;
      for (GlobalIndex idx : b.indices)
        slot_peer[static_cast<std::size_t>(idx)] = b.proc;
    }

    int iter = 0;
    StepGraph g(rt);
    g.set_pipelining(arrival);
    g.set_arrival_driven(arrival);
    if (tol) g.set_tolerance(*tol);

    g.step("local").uses(y).updates(x).compute([&] {
      for (std::size_t i = 0; i < globals.size(); ++i)
        x[i] = 0.5 * x[i] + 0.25 * y[i] + 0.125;
      c.charge_work(500.0 * (c.rank() == iter % kRanks ? 5.0 : 1.0));
      ++iter;
    });

    Step& halo = g.step("halo").reads(x, h).updates(y);
    if (shape == ChunkShape::kDisjointByPeer) {
      halo.compute_chunks([&](ChunkContext& ctx) {
        const int peer = ctx.chunk().peer;
        if (peer < 0) {
          for (std::size_t i = 0; i < globals.size(); ++i)
            y[i] = std::sqrt(x[i] * x[i] + 1.0) + 0.0625 * x[i];
        } else {
          for (GlobalIndex j : lrefs) {
            const auto s = static_cast<std::size_t>(j);
            if (slot_peer[s] == peer)
              y[s] = std::sqrt(x[s] * x[s] + 1.0) + 0.0625 * x[s];
          }
        }
        ctx.charge(40.0);
      });
      halo.chunk_writes_disjoint();
    } else {
      // Shared accumulator window: every chunk folds into y[0..owned),
      // so chunk order permutes the floating-point combine order.
      halo.compute([&] {
        std::fill(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(
                                             globals.size()),
                  0.0);
      });
      halo.compute_chunks([&](ChunkContext& ctx) {
        const int peer = ctx.chunk().peer;
        if (peer < 0) {
          for (std::size_t i = 0; i < globals.size(); ++i)
            y[i % globals.size()] += 0.25 * x[i];
        } else {
          for (GlobalIndex j : lrefs) {
            const auto s = static_cast<std::size_t>(j);
            if (slot_peer[s] == peer)
              y[s % globals.size()] += 0.125 * x[s];
          }
        }
        ctx.charge(40.0);
      });
    }

    rt.run(g, iters);

    const StepGraph::Stats& gs = g.stats();
    const auto fired = static_cast<std::uint64_t>(c.allreduce_sum(
        static_cast<long long>(gs.chunks_fired_early)));
    const auto colors = static_cast<std::uint64_t>(
        c.allreduce_sum(static_cast<long long>(gs.color_classes)));
    std::vector<double> x_all = collect(c, globals, {x.data(), globals.size()});
    std::vector<double> y_all = collect(c, globals, {y.data(), globals.size()});
    if (c.rank() == 0) {
      out.x = std::move(x_all);
      out.y = std::move(y_all);
      out.chunks_fired_early = fired;
      out.color_classes = colors;
    }
  });
  return out;
}

TEST(StepGraphArrival, OrderIndependentChunksBitwiseMatchEagerUnderFuzzing) {
  // The order-independent contract, fuzzed: disjoint-write chunks must be
  // bitwise identical to the eager serial arm under EVERY arrival order.
  // The delivery-permutation hook reshuffles modeled arrival times per
  // (src, tag) for each seed — 100+ distinct arrival orders on top of the
  // rotating-skew baseline.
  const auto eager =
      run_chunked_halo(false, ChunkShape::kDisjointByPeer, 6);
  std::uint64_t fired_total = 0;
  for (std::uint64_t seed = 1; seed <= 104; ++seed) {
    const double spread = 1e-3 * static_cast<double>(1 + seed % 7);
    const auto fuzzed = run_chunked_halo(
        true, ChunkShape::kDisjointByPeer, 6, {}, seed, spread);
    ASSERT_TRUE(spans_equal(fuzzed.x, eager.x,
                            "x (seed " + std::to_string(seed) + ")"));
    ASSERT_TRUE(spans_equal(fuzzed.y, eager.y,
                            "y (seed " + std::to_string(seed) + ")"));
    fired_total += fuzzed.chunks_fired_early;
  }
  // Across the sweep, chunks really did fire before their gather batch
  // completed — the fuzz is exercising the arrival path, not a fallback.
  EXPECT_GT(fired_total, 0u);
}

TEST(StepGraphArrival, DisjointChunksColorAsOneClass) {
  const auto r = run_chunked_halo(true, ChunkShape::kDisjointByPeer, 4);
  // Disjoint writes -> empty conflict graph -> exactly one color class
  // per rank's single chunked step plan.
  EXPECT_EQ(r.color_classes, static_cast<std::uint64_t>(kRanks));
}

TEST(StepGraphArrival, ConflictedChunksUnderToleranceStayWithinBound) {
  // Conflicted chunks (shared accumulator) under a declared tolerance:
  // arrival order legitimately reorders the combines, so the contract is
  // the tolerance bound, not bitwise equality.
  const EquivalenceTolerance tol{1e-12, 1e-9};
  const auto eager =
      run_chunked_halo(false, ChunkShape::kConflictedShared, 6);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto fuzzed = run_chunked_halo(
        true, ChunkShape::kConflictedShared, 6, tol, seed, 2e-3);
    ASSERT_EQ(fuzzed.y.size(), eager.y.size());
    for (std::size_t i = 0; i < eager.y.size(); ++i)
      ASSERT_TRUE(tol.within(fuzzed.y[i], eager.y[i]))
          << "y[" << i << "] seed " << seed << ": " << fuzzed.y[i]
          << " vs " << eager.y[i];
    for (std::size_t i = 0; i < eager.x.size(); ++i)
      ASSERT_TRUE(tol.within(fuzzed.x[i], eager.x[i]))
          << "x[" << i << "] seed " << seed;
  }
}

TEST(StepGraphArrival, ConflictedChunksWithoutToleranceFallBackToStatic) {
  // arrival_driven on, conflicted chunks, NO tolerance declared: the
  // graph must refuse the arrival path (silently using the static
  // whole-batch arm) and stay bitwise identical to eager.
  const auto eager =
      run_chunked_halo(false, ChunkShape::kConflictedShared, 6);
  const auto arrival = run_chunked_halo(
      true, ChunkShape::kConflictedShared, 6, {}, 3, 2e-3);
  EXPECT_TRUE(spans_equal(arrival.x, eager.x, "x"));
  EXPECT_TRUE(spans_equal(arrival.y, eager.y, "y"));
  EXPECT_EQ(arrival.chunks_fired_early, 0u);
}

TEST(StepGraphArrival, FixedCountChunksRunConcurrentWavesBitwise) {
  // compute_chunks(n, fn): chunks over owned index ranges, no comm key.
  // Declared disjoint, they run as one concurrent wave on the worker pool
  // under the arrival arm — the threaded path must stay bitwise identical
  // to the serial canonical order.
  const auto run = [&](bool arrival) {
    std::vector<double> out;
    Machine m(kRanks);
    m.run([&](Comm& c) {
      Runtime rt(c);
      const DistHandle d = rt.block(kN);
      const std::vector<GlobalIndex> globals = rt.owned_globals(d);
      std::vector<double> x(globals.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.5 + static_cast<double>(globals[i]);

      StepGraph g(rt);
      g.set_pipelining(arrival);
      g.set_arrival_driven(arrival);
      g.set_worker_threads(3);
      Step& s = g.step("sweep").updates(x);
      s.compute_chunks(4, [&](ChunkContext& ctx) {
        const std::size_t n = x.size();
        const std::size_t lo = n * ctx.chunk().index / ctx.chunk().count;
        const std::size_t hi =
            n * (ctx.chunk().index + 1) / ctx.chunk().count;
        for (std::size_t i = lo; i < hi; ++i)
          x[i] = std::sqrt(x[i]) + 0.25 * x[i];
        ctx.charge(static_cast<double>(hi - lo));
      });
      s.chunk_writes_disjoint();

      rt.run(g, 5);
      std::vector<double> all = collect(c, globals, {x.data(), globals.size()});
      if (c.rank() == 0) out = std::move(all);
    });
    return out;
  };
  EXPECT_TRUE(spans_equal(run(true), run(false), "x (threaded vs serial)"));
}

TEST(StepGraphArrival, RetargetRebuildsChunkPlanOnSuccessorEpoch) {
  // A repartition changes the gather schedule's recv peers, so the cached
  // chunk plan (peer list, coloring) must be invalidated by retarget()
  // and rebuilt against the successor epoch. Bitwise equality with the
  // eager arm across the swap proves the rebuilt plan keys chunks to the
  // right peers.
  const auto run = [&](bool arrival) {
    RepartResult out;
    Machine m(kRanks);
    m.run([&](Comm& c) {
      Runtime rt(c);
      std::vector<int> map(static_cast<std::size_t>(kN));
      for (GlobalIndex i = 0; i < kN; ++i)
        map[static_cast<std::size_t>(i)] = static_cast<int>(i) % kRanks;
      DistHandle d = rt.adopt(lang::Distribution::irregular(c, map));
      std::vector<GlobalIndex> globals = rt.owned_globals(d);

      lang::IndirectionArray ind(make_refs(c.rank(), 13));
      ScheduleHandle h = rt.inspect(rt.bind(d, ind));
      std::span<const GlobalIndex> lrefs = rt.local_refs(rt.bind(d, ind));

      auto extent = static_cast<std::size_t>(rt.local_extent(d));
      std::vector<double> x(extent, 0.0), y(extent, 0.0);
      for (std::size_t i = 0; i < globals.size(); ++i)
        x[i] = 2.0 + static_cast<double>(globals[i]);

      std::vector<int> slot_peer(extent, -1);
      const auto rebuild_slot_peer = [&] {
        slot_peer.assign(static_cast<std::size_t>(rt.local_extent(d)), -1);
        for (const core::ScheduleBlock& b : rt.schedule(h).recv_blocks()) {
          if (b.proc == c.rank()) continue;
          for (GlobalIndex idx : b.indices)
            slot_peer[static_cast<std::size_t>(idx)] = b.proc;
        }
      };
      rebuild_slot_peer();

      StepGraph g(rt);
      g.set_pipelining(arrival);
      g.set_arrival_driven(arrival);
      Step& halo = g.step("halo").reads(x, h).updates(y);
      halo.compute_chunks([&](ChunkContext& ctx) {
        const int peer = ctx.chunk().peer;
        if (peer < 0) {
          for (std::size_t i = 0; i < globals.size(); ++i)
            y[i] = 0.5 * x[i] + 1.0;
        } else {
          for (GlobalIndex j : lrefs) {
            const auto s = static_cast<std::size_t>(j);
            if (slot_peer[s] == peer) y[s] = 0.5 * x[s] + 1.0;
          }
        }
        ctx.charge(20.0);
      });
      halo.chunk_writes_disjoint();
      g.step("advance").uses(y).updates(x).compute([&] {
        for (std::size_t i = 0; i < globals.size(); ++i)
          x[i] = 0.75 * x[i] + 0.25 * y[i];
      });

      for (int it = 0; it < 6; ++it) {
        if (it == 3) {
          std::vector<int> map2(static_cast<std::size_t>(kN));
          for (GlobalIndex i = 0; i < kN; ++i)
            map2[static_cast<std::size_t>(i)] =
                static_cast<int>(i / 3 + 1) % kRanks;
          const DistHandle d2 = rt.repartition(d, map2);
          const ScheduleHandle remap = rt.plan_remap(d, d2);
          const ScheduleHandle h2 = rt.inspect(rt.bind(d2, ind));
          g.retarget(h, h2);

          std::vector<double> x2 = rt.remap<double>(
              remap, std::span<const double>{x.data(), globals.size()});
          const std::span<const GlobalIndex> lrefs2 =
              rt.local_refs(rt.bind(d2, ind));
          rt.retire(d);
          d = d2;
          h = h2;
          lrefs = lrefs2;
          globals = rt.owned_globals(d);
          extent = static_cast<std::size_t>(rt.local_extent(d));
          x.assign(extent, 0.0);
          std::copy(x2.begin(), x2.end(), x.begin());
          y.assign(extent, 0.0);
          rebuild_slot_peer();
        }
        g.advance();
      }
      g.quiesce();

      std::vector<double> x_all =
          collect(c, globals, {x.data(), globals.size()});
      std::vector<double> y_all =
          collect(c, globals, {y.data(), globals.size()});
      if (c.rank() == 0) {
        out.x = std::move(x_all);
        out.y = std::move(y_all);
      }
    });
    return out;
  };
  const auto arrival = run(true);
  const auto eager = run(false);
  EXPECT_TRUE(spans_equal(arrival.x, eager.x, "x (across retarget)"));
  EXPECT_TRUE(spans_equal(arrival.y, eager.y, "y (across retarget)"));
}

TEST(CommEngineTraffic, ResetAndPerBatchSnapshots) {
  Machine m(2);
  m.run([&](Comm& c) {
    comm::Engine eng(c);
    // Two batches with different payload sizes.
    std::vector<int> dest1{1 - c.rank()};
    std::vector<double> items1{1.0};
    std::vector<double> out1;
    auto h1 = eng.post_migrate<double>(
        core::LightweightSchedule::build(c, dest1), items1, out1);
    eng.flush();
    std::vector<int> dest2{1 - c.rank(), 1 - c.rank(), 1 - c.rank()};
    std::vector<double> items2{1.0, 2.0, 3.0};
    std::vector<double> out2;
    auto h2 = eng.post_migrate<double>(
        core::LightweightSchedule::build(c, dest2), items2, out2);
    eng.flush();
    eng.wait_all();

    const auto t1 = eng.batch_traffic(h1);
    const auto t2 = eng.batch_traffic(h2);
    EXPECT_EQ(t1.messages, 1u);
    EXPECT_EQ(t1.bytes, sizeof(double));
    EXPECT_EQ(t2.messages, 1u);
    EXPECT_EQ(t2.bytes, 3 * sizeof(double));
    // The cumulative counter is the sum of the batches; reset zeroes it
    // without touching the per-batch snapshots.
    EXPECT_EQ(eng.traffic().messages, 2u);
    EXPECT_EQ(eng.traffic().bytes, 4 * sizeof(double));
    eng.reset_traffic();
    EXPECT_EQ(eng.traffic().messages, 0u);
    EXPECT_EQ(eng.batch_traffic(h2).bytes, 3 * sizeof(double));
  });
}

}  // namespace
}  // namespace chaos
