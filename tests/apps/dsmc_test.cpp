// Mini-DSMC tests: physics invariants, the determinism contract, and exact
// parallel-vs-sequential agreement across processor counts, migration
// modes, remapping partitioners, and the compiler-generated path.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/dsmc/parallel.hpp"
#include "apps/dsmc/sequential.hpp"
#include "support/seeds.hpp"

namespace chaos::dsmc {
namespace {

DsmcParams small_params() {
  DsmcParams p;
  p.nx = 8;
  p.ny = 8;
  p.nz = 1;
  p.n_particles = 400;
  p.seed = 11;
  return p;
}

TEST(Dsmc, CellOfMapsPositionsToGrid) {
  DsmcParams p = small_params();
  Particle q;
  q.x = 0.5;
  q.y = 0.5;
  EXPECT_EQ(cell_of(p, q), 0);
  q.x = 7.9;
  q.y = 7.9;
  EXPECT_EQ(cell_of(p, q), 63);
  q.x = 3.2;
  q.y = 1.7;
  EXPECT_EQ(cell_of(p, q), 3 + 8 * 1);
}

TEST(Dsmc, ChainPositionRoundTrips) {
  DsmcParams p;
  p.nx = 6;
  p.ny = 4;
  p.nz = 3;
  for (GlobalIndex c = 0; c < p.n_cells(); ++c)
    EXPECT_EQ(cell_at_chain_position(p, chain_position(p, c)), c);
  // Chain order is x-slowest: consecutive chain positions within one slab
  // share the same x index.
  const GlobalIndex c0 = cell_at_chain_position(p, 0);
  const GlobalIndex c1 = cell_at_chain_position(p, 1);
  EXPECT_EQ(c0 % p.nx, c1 % p.nx);
}

TEST(Dsmc, GenerationDeterministicAndInBounds) {
  DsmcParams p = small_params();
  auto a = generate_particles(p);
  auto b = generate_particles(p);
  ASSERT_EQ(a.size(), 400u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].vy, b[i].vy);
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, p.nx);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LT(a[i].y, p.ny);
  }
}

TEST(Dsmc, FlowBiasShiftsMeanVelocity) {
  DsmcParams p = small_params();
  p.n_particles = 20000;
  auto parts = generate_particles(p);
  double mean_vx = 0;
  for (const auto& q : parts) mean_vx += q.vx;
  mean_vx /= static_cast<double>(parts.size());
  EXPECT_NEAR(mean_vx, p.flow_bias * p.drift, 0.02);
}

TEST(Dsmc, NonuniformInitRampsDensity) {
  DsmcParams p = small_params();
  p.nonuniform_init = true;
  p.n_particles = 20000;
  auto parts = generate_particles(p);
  int left = 0;
  for (const auto& q : parts)
    if (q.x < p.nx / 2.0) ++left;
  EXPECT_GT(left, 12000);  // most particles start in the left half
}

TEST(Dsmc, AdvanceWrapsPeriodically) {
  DsmcParams p = small_params();
  Particle q;
  q.x = 7.8;
  q.vx = 0.5;
  advance(p, q, 1.0);
  EXPECT_NEAR(q.x, 0.3, 1e-12);
  q.x = 0.1;
  q.vx = -0.5;
  advance(p, q, 1.0);
  EXPECT_NEAR(q.x, 7.6, 1e-12);
}

TEST(Dsmc, CollisionsConserveMomentumAndEnergy) {
  DsmcParams p = small_params();
  auto parts = generate_particles(p);
  std::vector<Particle*> bucket;
  for (std::size_t i = 0; i < 10; ++i) bucket.push_back(&parts[i]);
  auto momentum = [&] {
    part::Vec3 m{};
    double e = 0;
    for (auto* q : bucket) {
      m.x += q->vx;
      m.y += q->vy;
      m.z += q->vz;
      e += q->vx * q->vx + q->vy * q->vy + q->vz * q->vz;
    }
    return std::pair<part::Vec3, double>(m, e);
  };
  auto [m0, e0] = momentum();
  const int done = collide_cell(p, 3, 0, bucket);
  EXPECT_GT(done, 0);
  auto [m1, e1] = momentum();
  EXPECT_NEAR(m0.x, m1.x, 1e-10);
  EXPECT_NEAR(m0.y, m1.y, 1e-10);
  EXPECT_NEAR(m0.z, m1.z, 1e-10);
  EXPECT_NEAR(e0, e1, 1e-9);
}

TEST(Dsmc, SequentialConservesParticles) {
  DsmcParams p = small_params();
  auto r = run_sequential_dsmc(p, 10);
  EXPECT_EQ(r.particles.size(), 400u);
  EXPECT_GT(r.collisions, 0);
  std::set<GlobalIndex> ids;
  for (const auto& q : r.particles) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 400u);
}

// ---- Parallel agreement ----------------------------------------------------

void expect_exact_match(const std::vector<Particle>& par,
                        const std::vector<Particle>& seq) {
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].id, seq[i].id);
    EXPECT_EQ(par[i].x, seq[i].x) << "particle " << i;
    EXPECT_EQ(par[i].y, seq[i].y) << "particle " << i;
    EXPECT_EQ(par[i].vx, seq[i].vx) << "particle " << i;
    EXPECT_EQ(par[i].vy, seq[i].vy) << "particle " << i;
  }
}

class DsmcParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(DsmcParallelSweep, LightweightMatchesSequentialExactly) {
  const int P = GetParam();
  DsmcParams p = small_params();
  auto seq = run_sequential_dsmc(p, 8);

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 8;
  cfg.collect_state = true;
  sim::Machine m(P);
  auto par = run_parallel_dsmc(m, cfg);
  expect_exact_match(par.particles, seq.particles);
  EXPECT_EQ(par.collisions, seq.collisions);
}

INSTANTIATE_TEST_SUITE_P(Procs, DsmcParallelSweep,
                         ::testing::Values(1, 2, 4, 6));

TEST(DsmcParallel, RegularScheduleModeMatchesExactly) {
  DsmcParams p = small_params();
  auto seq = run_sequential_dsmc(p, 6);
  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 6;
  cfg.migration = MigrationMode::kRegular;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_dsmc(m, cfg);
  expect_exact_match(par.particles, seq.particles);
}

TEST(DsmcParallel, CompilerGeneratedModeMatchesExactly) {
  DsmcParams p = small_params();
  auto seq = run_sequential_dsmc(p, 6);
  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 6;
  cfg.compiler_generated = true;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_dsmc(m, cfg);
  expect_exact_match(par.particles, seq.particles);
  EXPECT_GT(par.phases.size_recompute, 0.0);
}

TEST(DsmcParallel, RemappingModesMatchExactly) {
  DsmcParams p = small_params();
  p.nonuniform_init = true;
  auto seq = run_sequential_dsmc(p, 9);
  for (auto kind : {core::PartitionerKind::kChain, core::PartitionerKind::kRcb,
                    core::PartitionerKind::kRib}) {
    ParallelDsmcConfig cfg;
    cfg.params = p;
    cfg.steps = 9;
    cfg.remap_every = 3;
    cfg.remap_partitioner = kind;
    cfg.collect_state = true;
    sim::Machine m(4);
    auto par = run_parallel_dsmc(m, cfg);
    expect_exact_match(par.particles, seq.particles);
    EXPECT_GT(par.phases.remap, 0.0);
  }
}

TEST(DsmcParallel, RemapOverlapSafeWithEpochRetiringModes) {
  // The remap phase posts the particle migration through the comm engine
  // and rebuilds the cell ownership structures while the transfer is in
  // flight. In the compiler-generated and regular-migration modes that
  // rebuild retires a distribution epoch and constructs a new one
  // (collective) mid-flight — exactly the interaction that must not
  // deadlock, reorder arrivals, or touch freed buffers.
  DsmcParams p = small_params();
  p.nonuniform_init = true;
  auto seq = run_sequential_dsmc(p, 9);

  ParallelDsmcConfig compiler;
  compiler.params = p;
  compiler.steps = 9;
  compiler.remap_every = 3;
  compiler.compiler_generated = true;
  compiler.collect_state = true;
  sim::Machine m1(4);
  auto par_compiler = run_parallel_dsmc(m1, compiler);
  expect_exact_match(par_compiler.particles, seq.particles);

  ParallelDsmcConfig regular;
  regular.params = p;
  regular.steps = 9;
  regular.remap_every = 3;
  regular.migration = MigrationMode::kRegular;
  regular.collect_state = true;
  sim::Machine m2(4);
  auto par_regular = run_parallel_dsmc(m2, regular);
  expect_exact_match(par_regular.particles, seq.particles);
}

TEST(DsmcParallel, LightweightCheaperThanRegular) {
  // Table 4's mechanism: the regular-schedule path must cost substantially
  // more virtual time for the same physical result. Like the paper, the
  // load is deliberately balanced (no drift) so per-step waits do not mask
  // the preprocessing gap.
  DsmcParams p = small_params();
  p.n_particles = 4000;
  p.flow_bias = 0.0;
  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 10;
  // Imperative on both arms, like the table4 bench: isolate the schedule
  // cost difference from step-graph pipelining gains.
  cfg.executor = DsmcExecutor::kImperative;

  sim::Machine m1(4), m2(4);
  cfg.migration = MigrationMode::kLightweight;
  auto light = run_parallel_dsmc(m1, cfg);
  cfg.migration = MigrationMode::kRegular;
  auto regular = run_parallel_dsmc(m2, cfg);
  // The regular path pays extra charged computation (hashing, placement
  // bookkeeping) and extra communication (placement exchanges) per step;
  // end-to-end it must be measurably slower. (Per-phase maxima can be
  // masked by rendezvous waits at this small scale, so assert on the
  // aggregate metrics.)
  EXPECT_LT(light.computation_time, regular.computation_time);
  EXPECT_LT(light.communication_time * 1.2, regular.communication_time);
  EXPECT_LT(light.execution_time * 1.03, regular.execution_time);
}

TEST(DsmcParallel, RemappingImprovesImbalancedRun) {
  // Table 5's mechanism: with a drifting density blob, periodic remapping
  // must beat the static partition on execution time.
  DsmcParams p;
  p.nx = 24;
  p.ny = 8;
  p.nz = 1;
  p.n_particles = 6000;
  p.nonuniform_init = true;
  p.seed = 5;

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 40;

  sim::Machine m1(8), m2(8);
  cfg.remap_every = 0;  // static
  auto stat = run_parallel_dsmc(m1, cfg);
  cfg.remap_every = 10;
  cfg.remap_partitioner = core::PartitionerKind::kChain;
  auto remap = run_parallel_dsmc(m2, cfg);
  EXPECT_LT(remap.execution_time, stat.execution_time);
  EXPECT_LT(remap.load_balance, stat.load_balance);
}

TEST(DsmcStepGraph, PipelinedEagerAndImperativeAllMatchExactly) {
  // The move/remap cycle declared as a step graph (the default executor)
  // must be bitwise identical to the eager graph arm AND to the
  // hand-sequenced imperative fallback — including remaps landing while
  // the declared migration is still in flight.
  DsmcParams p = small_params();
  p.nonuniform_init = true;
  auto seq = run_sequential_dsmc(p, 9);

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 9;
  cfg.remap_every = 3;
  cfg.collect_state = true;

  ASSERT_EQ(cfg.executor, DsmcExecutor::kStepGraph);  // primary by default
  sim::Machine m1(4);
  auto graph = run_parallel_dsmc(m1, cfg);
  expect_exact_match(graph.particles, seq.particles);

  cfg.executor = DsmcExecutor::kStepGraphEager;
  sim::Machine m2(4);
  auto eager = run_parallel_dsmc(m2, cfg);
  expect_exact_match(eager.particles, graph.particles);
  EXPECT_EQ(eager.collisions, graph.collisions);

  cfg.executor = DsmcExecutor::kImperative;
  sim::Machine m3(4);
  auto imperative = run_parallel_dsmc(m3, cfg);
  expect_exact_match(imperative.particles, graph.particles);
  EXPECT_EQ(imperative.collisions, graph.collisions);
}

TEST(DsmcStepGraph, ViewBuiltGraphBitwiseEqualsHandDeclared) {
  // API-redesign acceptance: the collide/move cycle bound as typed views
  // (use/update/migrate) must be bitwise identical to the hand-declared
  // construction on both graph arms, including remaps landing while the
  // declared migration is in flight.
  DsmcParams p = small_params();
  p.nonuniform_init = true;

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 9;
  cfg.remap_every = 3;
  cfg.collect_state = true;

  for (const DsmcExecutor executor :
       {DsmcExecutor::kStepGraph, DsmcExecutor::kStepGraphEager}) {
    cfg.executor = executor;
    cfg.declare_by_hand = false;
    sim::Machine m1(4);
    auto views = run_parallel_dsmc(m1, cfg);
    cfg.declare_by_hand = true;
    sim::Machine m2(4);
    auto hand = run_parallel_dsmc(m2, cfg);
    expect_exact_match(views.particles, hand.particles);
    EXPECT_EQ(views.collisions, hand.collisions);
    EXPECT_EQ(views.execution_time, hand.execution_time);
  }
}

// ---- Birth/death (dynamic index spaces) ------------------------------------

DsmcParams birth_death_params() {
  DsmcParams p = small_params();
  p.births_per_step = 25;
  p.death_rate = 0.08;
  return p;
}

TEST(DsmcBirthDeath, SequentialConservationMatchesClosedFormModel) {
  // The id universe is a pure function of (seed, step): newborns get
  // n_particles + step*births_per_step + i and absorption is decided by
  // the absorbed() hash alone. Replay that model independently and demand
  // the sequential driver's survivor id set equals it exactly.
  DsmcParams p = birth_death_params();
  const int steps = 10;
  auto r = run_sequential_dsmc(p, steps);

  std::set<GlobalIndex> model;
  for (GlobalIndex id = 0; id < p.n_particles; ++id) model.insert(id);
  for (int step = 0; step < steps; ++step) {
    for (auto it = model.begin(); it != model.end();)
      it = absorbed(p, *it, step) ? model.erase(it) : std::next(it);
    for (GlobalIndex i = 0; i < p.births_per_step; ++i)
      model.insert(p.n_particles + step * p.births_per_step + i);
  }

  ASSERT_EQ(r.particles.size(), model.size());
  std::set<GlobalIndex> got;
  for (const auto& q : r.particles) got.insert(q.id);
  EXPECT_EQ(got, model);
  // Deaths actually happened and births actually happened: the population
  // is neither the initial count nor initial + all births.
  EXPECT_NE(model.size(), static_cast<std::size_t>(p.n_particles));
  EXPECT_LT(model.size(),
            static_cast<std::size_t>(p.n_particles +
                                     steps * p.births_per_step));
}

TEST(DsmcBirthDeath, AllExecutorsMatchSequentialWithRemapExactly) {
  // True particle birth/death through every executor arm — including the
  // pipelined step graph whose migration is in flight when newborns enter
  // and absorbed particles leave — stays bitwise identical to the
  // sequential driver, across periodic remaps of a drifting density.
  DsmcParams p = birth_death_params();
  p.nonuniform_init = true;
  auto seq = run_sequential_dsmc(p, 9);

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 9;
  cfg.remap_every = 3;
  cfg.collect_state = true;

  ParallelDsmcResult pipelined;
  for (const DsmcExecutor executor :
       {DsmcExecutor::kStepGraph, DsmcExecutor::kStepGraphEager,
        DsmcExecutor::kStepGraphArrival, DsmcExecutor::kImperative}) {
    cfg.executor = executor;
    sim::Machine m(4);
    auto par = run_parallel_dsmc(m, cfg);
    expect_exact_match(par.particles, seq.particles);
    EXPECT_EQ(par.collisions, seq.collisions);
    if (executor == DsmcExecutor::kStepGraph) pipelined = std::move(par);
  }
}

TEST(DsmcBirthDeath, ParallelSweepMatchesAcrossProcessorCounts) {
  DsmcParams p = birth_death_params();
  auto seq = run_sequential_dsmc(p, 8);
  for (const int P : {1, 2, 4, 6}) {
    ParallelDsmcConfig cfg;
    cfg.params = p;
    cfg.steps = 8;
    cfg.collect_state = true;
    sim::Machine m(P);
    auto par = run_parallel_dsmc(m, cfg);
    expect_exact_match(par.particles, seq.particles);
    EXPECT_EQ(par.collisions, seq.collisions);
  }
}

TEST(DsmcBirthDeath, PeakBytesStayBelowFixedCapacityOverAllocation) {
  // The point of dynamic index spaces for DSMC: storage tracks the LIVE
  // population. The pre-dynamic shape had to provision one slot for every
  // particle ever alive (initial + steps * births); with real deletion the
  // summed per-rank peaks must come in clearly under that bound.
  DsmcParams p = birth_death_params();
  p.death_rate = 0.15;  // strong absorption: live population shrinks fast
  const int steps = 12;
  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = steps;
  sim::Machine m(4);
  auto par = run_parallel_dsmc(m, cfg);

  const std::size_t ever_alive = static_cast<std::size_t>(
      p.n_particles + steps * p.births_per_step);
  const std::size_t fixed_capacity = ever_alive * sizeof(Particle);
  EXPECT_GT(par.peak_particle_bytes, 0u);
  EXPECT_LT(par.peak_particle_bytes, fixed_capacity);
}

TEST(DsmcBirthDeath, DeliveryPermutationFuzzStaysConservativeAndBitwise) {
  // Adversarial message timing: migrate batches carrying newborn particles
  // (and missing absorbed ones) are delivered in seeded-random permuted
  // order with jittered latencies. Every permutation must conserve the
  // model id universe and agree bitwise with the unperturbed oracle.
  DsmcParams p = birth_death_params();
  p.nonuniform_init = true;

  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 8;
  cfg.remap_every = 4;
  cfg.collect_state = true;

  sim::Machine oracle_m(4);
  const auto oracle = run_parallel_dsmc(oracle_m, cfg);
  std::set<GlobalIndex> oracle_ids;
  for (const auto& q : oracle.particles) oracle_ids.insert(q.id);

  const std::uint64_t nseeds =
      chaos::testing_support::seed_count(10, "CHAOS_DSMC_FUZZ_SEEDS");
  for (std::uint64_t seed = 1; seed <= nseeds; ++seed) {
    SCOPED_TRACE("perm seed=" + std::to_string(seed));
    sim::Machine m(4);
    m.set_delivery_permutation(seed, 1e-3 * (1.0 + static_cast<double>(seed % 7)));
    auto par = run_parallel_dsmc(m, cfg);
    std::set<GlobalIndex> ids;
    for (const auto& q : par.particles) ids.insert(q.id);
    ASSERT_EQ(ids, oracle_ids);  // conservation: nothing lost or duplicated
    expect_exact_match(par.particles, oracle.particles);
    EXPECT_EQ(par.collisions, oracle.collisions);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(DsmcParallel, VirtualTimesDeterministic) {
  DsmcParams p = small_params();
  ParallelDsmcConfig cfg;
  cfg.params = p;
  cfg.steps = 5;
  double first = -1;
  for (int trial = 0; trial < 3; ++trial) {
    sim::Machine m(4);
    auto r = run_parallel_dsmc(m, cfg);
    if (trial == 0)
      first = r.execution_time;
    else
      EXPECT_EQ(r.execution_time, first);
  }
}

}  // namespace
}  // namespace chaos::dsmc
