// Mini-CHARMM tests: system generation, neighbor lists, sequential
// dynamics sanity, and — the load-bearing one — parallel-vs-sequential
// agreement across processor counts, schedule modes, and the
// compiler-generated path.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "apps/charmm/forces.hpp"
#include "apps/charmm/neighbor.hpp"
#include "apps/charmm/parallel.hpp"
#include "apps/charmm/sequential.hpp"
#include "apps/charmm/system.hpp"

namespace chaos::charmm {
namespace {

TEST(System, GenerationIsDeterministic) {
  auto a = MolecularSystem::generate(SystemParams::small(120));
  auto b = MolecularSystem::generate(SystemParams::small(120));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pos[i].x, b.pos[i].x);
    EXPECT_EQ(a.vel[i].y, b.vel[i].y);
  }
  EXPECT_EQ(a.bonds, b.bonds);
}

TEST(System, AtomsInsideBox) {
  auto s = MolecularSystem::generate(SystemParams::small(300));
  EXPECT_EQ(s.size(), 300u);
  for (const auto& p : s.pos) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(p[a], 0.0);
      EXPECT_LT(p[a], s.params.box);
    }
  }
}

TEST(System, BondsConnectDistinctValidAtoms) {
  auto s = MolecularSystem::generate(SystemParams::small(200));
  EXPECT_FALSE(s.bonds.empty());
  for (const auto& [i, j] : s.bonds) {
    EXPECT_GE(i, 0);
    EXPECT_LT(j, static_cast<GlobalIndex>(s.size()));
    EXPECT_LT(i, j);
  }
}

TEST(System, FullSizeSystemHasPaperDimensions) {
  SystemParams p;  // defaults = the paper's benchmark case
  EXPECT_EQ(p.n_atoms, 14026u);
  EXPECT_EQ(p.cutoff, 14.0);
}

TEST(Neighbor, ListMatchesBruteForce) {
  auto s = MolecularSystem::generate(SystemParams::small(150));
  std::vector<GlobalIndex> rows(s.size());
  std::iota(rows.begin(), rows.end(), GlobalIndex{0});
  auto list = build_nonbonded_list(s.pos, rows, s.params.cutoff,
                                   s.params.box, nullptr, s.bonds);

  // Brute force half-list with minimum image and bonded exclusions.
  auto dist2 = [&](GlobalIndex i, GlobalIndex j) {
    part::Vec3 d = min_image(s.pos[static_cast<size_t>(i)],
                             s.pos[static_cast<size_t>(j)], s.params.box);
    return d.dot(d);
  };
  std::set<std::pair<GlobalIndex, GlobalIndex>> bonded(s.bonds.begin(),
                                                       s.bonds.end());
  const double cut2 = s.params.cutoff * s.params.cutoff;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::set<GlobalIndex> expect;
    for (GlobalIndex j = rows[r] + 1;
         j < static_cast<GlobalIndex>(s.size()); ++j)
      if (dist2(rows[r], j) <= cut2 && !bonded.count({rows[r], j}))
        expect.insert(j);
    std::set<GlobalIndex> got(list.jnb.begin() + list.inblo[r],
                              list.jnb.begin() + list.inblo[r + 1]);
    EXPECT_EQ(got, expect) << "row " << r;
  }
}

TEST(Neighbor, SubsetRowsOnlyCoverRequestedAtoms) {
  auto s = MolecularSystem::generate(SystemParams::small(100));
  std::vector<GlobalIndex> rows{5, 17, 60};
  auto list = build_nonbonded_list(s.pos, rows, s.params.cutoff,
                                   s.params.box);
  EXPECT_EQ(list.rows(), 3u);
}

TEST(Neighbor, StatsCountCandidates) {
  auto s = MolecularSystem::generate(SystemParams::small(100));
  std::vector<GlobalIndex> rows(s.size());
  std::iota(rows.begin(), rows.end(), GlobalIndex{0});
  NeighborBuildStats stats;
  auto list =
      build_nonbonded_list(s.pos, rows, s.params.cutoff, s.params.box, &stats);
  EXPECT_GE(stats.candidates_examined, list.pairs());
  EXPECT_EQ(stats.pairs_kept, list.pairs());
}

TEST(Forces, NonbondedZeroBeyondCutoff) {
  part::Point3 a{0, 0, 0}, b{6.0, 0, 0};
  auto f = nonbonded_force(a, b, 5.0, 100.0);
  EXPECT_EQ(f.x, 0.0);
  EXPECT_EQ(f.y, 0.0);
}

TEST(Forces, NonbondedRepulsiveAtContact) {
  part::Point3 a{0, 0, 0}, b{1.0, 0, 0};
  auto f = nonbonded_force(a, b, 5.0, 100.0);
  EXPECT_LT(f.x, 0.0);  // force on a points away from b (negative x)
}

TEST(Forces, BondRestoresEquilibrium) {
  part::Point3 a{0, 0, 0};
  // Stretched bond pulls atoms together; compressed pushes apart.
  auto stretched = bond_force(a, part::Point3{2.0, 0, 0}, 100.0, 1.0);
  EXPECT_GT(stretched.x, 0.0);
  auto compressed = bond_force(a, part::Point3{0.5, 0, 0}, 100.0, 1.0);
  EXPECT_LT(compressed.x, 0.0);
}

TEST(Forces, NewtonThirdLawByConstruction) {
  part::Point3 a{1, 2, 3}, b{2.5, 2, 3};
  auto fab = nonbonded_force(a, b, 5.0, 50.0);
  auto fba = nonbonded_force(b, a, 5.0, 50.0);
  EXPECT_NEAR(fab.x, -fba.x, 1e-14);
  EXPECT_NEAR(fab.y, -fba.y, 1e-14);
}

TEST(Sequential, RunsAndConservesAtomCount) {
  auto s = MolecularSystem::generate(SystemParams::small(200));
  SequentialRunConfig cfg;
  cfg.steps = 6;
  cfg.nb_rebuild_every = 3;
  auto r = run_sequential_charmm(s, cfg);
  EXPECT_EQ(r.pos.size(), s.size());
  EXPECT_EQ(r.nb_rebuilds, 2);  // initial + one periodic rebuild
  EXPECT_GT(r.work_units, 0.0);
  for (const auto& p : r.pos)
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(p[a], 0.0);
      EXPECT_LT(p[a], s.params.box);
    }
}

TEST(Sequential, TotalForceNearZero) {
  // Newton's third law: all forces are internal, so they sum to ~0.
  auto s = MolecularSystem::generate(SystemParams::small(150));
  SequentialRunConfig cfg;
  cfg.steps = 1;
  auto r = run_sequential_charmm(s, cfg);
  part::Vec3 total{};
  for (const auto& f : r.force) total = total + f;
  EXPECT_NEAR(total.x, 0.0, 1e-8);
  EXPECT_NEAR(total.y, 0.0, 1e-8);
  EXPECT_NEAR(total.z, 0.0, 1e-8);
}

// ---- Parallel vs sequential ------------------------------------------------

class CharmmParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(CharmmParallelSweep, MatchesSequentialReference) {
  const int P = GetParam();
  const auto sys_params = SystemParams::small(240);

  SequentialRunConfig run;
  run.steps = 5;
  run.nb_rebuild_every = 3;

  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  // The historical eager reference shape, whose accumulation order tracks
  // the sequential loop nest to last-bit scale. The step-graph shapes have
  // their own agreement tests (CharmmStepGraph suite) — their pipelined
  // scatter delivery reassociates float adds, which neighbor-list rebuilds
  // amplify into genuine (physically equivalent) trajectory divergence.
  cfg.shape = CharmmShape::kMerged;
  cfg.collect_state = true;
  sim::Machine m(P);
  auto par = run_parallel_charmm(m, cfg);

  ASSERT_EQ(par.pos.size(), seq.pos.size());
  for (std::size_t i = 0; i < seq.pos.size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-8)
          << "atom " << i << " axis " << a;
      EXPECT_NEAR(par.force[i][a], seq.force[i][a], 1e-7)
          << "atom " << i << " axis " << a;
    }
  }
  EXPECT_EQ(par.phases.nb_rebuilds, seq.nb_rebuilds);
}

INSTANTIATE_TEST_SUITE_P(Procs, CharmmParallelSweep,
                         ::testing::Values(1, 2, 4, 7));

TEST(CharmmParallel, MultipleSchedulesModeAlsoCorrect) {
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 4;
  run.nb_rebuild_every = 2;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.shape = CharmmShape::kMultiple;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-8);
}

TEST(CharmmParallel, EngineCoalescedModeAlsoCorrect) {
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 4;
  run.nb_rebuild_every = 2;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.shape = CharmmShape::kEngine;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-8);
}

TEST(CharmmParallel, EngineCoalescingSendsFewerMessagesThanMultiple) {
  // The acceptance property of the comm engine: N independent schedules
  // posted into one batch leave as at most one message per peer per flush,
  // where the blocking multiple-schedules executor sends one per schedule.
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(300);
  cfg.run.steps = 4;
  cfg.run.nb_rebuild_every = 10;

  sim::Machine m1(4), m2(4);
  cfg.shape = CharmmShape::kMultiple;
  auto multiple = run_parallel_charmm(m1, cfg);
  cfg.shape = CharmmShape::kEngine;
  auto engine = run_parallel_charmm(m2, cfg);

  EXPECT_LT(engine.msgs_sent, multiple.msgs_sent);
  // Executor flushes pack both loops' segments: strictly more logical
  // segments than physical messages proves real coalescing happened.
  EXPECT_GT(engine.coalesced_segments, engine.coalesced_msgs);
  EXPECT_LE(engine.communication_time, multiple.communication_time);
}

TEST(CharmmParallel, CompilerGeneratedPathAlsoCorrect) {
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 4;
  run.nb_rebuild_every = 2;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.compiler_generated = true;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-8);
}

TEST(CharmmParallel, RepartitioningPreservesCorrectness) {
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 6;
  run.nb_rebuild_every = 3;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.repartition_every = 2;
  cfg.alternate_partitioners = true;
  cfg.shape = CharmmShape::kMerged;  // see MatchesSequentialReference
  cfg.collect_state = true;
  sim::Machine m(3);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-8);
}

TEST(CharmmAutonomic, PolicyFiresAndPhysicsTracksSequential) {
  // Smoke for the cfg.autonomic wiring: seed a weight-blind block
  // distribution, set a hair trigger so the first closed window fires, and
  // check the rebalance machinery (diffusion, or the rebuild fallback when
  // nothing is diffusible) leaves the trajectory on the sequential
  // reference. kMerged tracks the sequential loop nest to last-bit scale
  // even across redistributions (see RepartitioningPreservesCorrectness).
  const auto sys_params = SystemParams::small(240);
  SequentialRunConfig run;
  run.steps = 9;
  run.nb_rebuild_every = 4;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.partitioner = core::PartitionerKind::kBlock;
  cfg.shape = CharmmShape::kMerged;
  cfg.autonomic = true;
  cfg.policy.window_steps = 3;
  cfg.policy.trigger_balance = 1.001;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto aut = run_parallel_charmm(m, cfg);

  EXPECT_GE(aut.rebalances, 1);
  EXPECT_EQ(aut.rebalances, aut.diffusions + aut.rebuilds);
  ASSERT_EQ(aut.pos.size(), seq.pos.size());
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(aut.pos[i][a], seq.pos[i][a], 1e-8)
          << "atom " << i << " axis " << a;
}

TEST(CharmmParallel, PhaseTimesArePopulated) {
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(150);
  cfg.run.steps = 3;
  cfg.run.nb_rebuild_every = 2;
  sim::Machine m(2);
  auto r = run_parallel_charmm(m, cfg);
  EXPECT_GT(r.phases.data_partition, 0.0);
  EXPECT_GT(r.phases.nb_list, 0.0);
  EXPECT_GT(r.phases.schedule_gen, 0.0);
  EXPECT_GT(r.phases.schedule_regen, 0.0);  // one rebuild at step 2
  EXPECT_GT(r.phases.executor, 0.0);
  EXPECT_GT(r.execution_time, 0.0);
  EXPECT_GE(r.load_balance, 1.0);
}

TEST(CharmmParallel, MergedSchedulesReduceCommunication) {
  // Table 3's mechanism, in miniature.
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(300);
  cfg.run.steps = 4;
  cfg.run.nb_rebuild_every = 10;

  sim::Machine m1(4), m2(4);
  cfg.shape = CharmmShape::kMerged;
  auto merged = run_parallel_charmm(m1, cfg);
  cfg.shape = CharmmShape::kMultiple;
  auto multiple = run_parallel_charmm(m2, cfg);
  EXPECT_LT(merged.communication_time, multiple.communication_time);
}

// ---- Step-graph executor ---------------------------------------------------

TEST(CharmmStepGraph, PipelinedBitwiseEqualsEagerIncludingRepartition) {
  // The acceptance property of the declarative executor: the pipelined
  // step-graph run must be BITWISE identical to the same graph executed
  // eagerly (post/flush/wait at every step) — including across mid-run
  // repartitions that land while the pipeline is hot.
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(240);
  cfg.run.steps = 7;
  cfg.run.nb_rebuild_every = 3;
  cfg.repartition_every = 3;
  cfg.alternate_partitioners = true;
  cfg.collect_state = true;

  sim::Machine m1(4), m2(4);
  cfg.shape = CharmmShape::kStepGraph;
  auto pipelined = run_parallel_charmm(m1, cfg);
  cfg.shape = CharmmShape::kStepGraphEager;
  auto eager = run_parallel_charmm(m2, cfg);

  ASSERT_EQ(pipelined.pos.size(), eager.pos.size());
  for (std::size_t i = 0; i < eager.pos.size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(pipelined.pos[i][a], eager.pos[i][a]) << "atom " << i;
      EXPECT_EQ(pipelined.force[i][a], eager.force[i][a]) << "atom " << i;
    }
  }
  // The pipelined arm must actually have pipelined: non-bonded gathers
  // posted while bonded scatters were in flight, and hazard stalls where
  // the dependence analysis required delivery.
  EXPECT_GT(pipelined.steps_overlapped, 0u);
  EXPECT_GT(pipelined.pipelined_gathers, 0u);
  EXPECT_GT(pipelined.hazard_stalls, 0u);
  EXPECT_EQ(eager.steps_overlapped, 0u);
  EXPECT_EQ(eager.pipelined_gathers, 0u);
}

TEST(CharmmStepGraph, ViewBuiltGraphBitwiseEqualsHandDeclared) {
  // API-redesign acceptance: the step graph assembled from typed view
  // bindings (in/sum/use/update — access sets inferred) must be BITWISE
  // identical to the PR-4 hand-declared construction, on both the
  // pipelined and the eager arm, including mid-run repartitions landing
  // while the pipeline is hot.
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(240);
  cfg.run.steps = 7;
  cfg.run.nb_rebuild_every = 3;
  cfg.repartition_every = 3;
  cfg.alternate_partitioners = true;
  cfg.collect_state = true;

  for (const CharmmShape shape :
       {CharmmShape::kStepGraph, CharmmShape::kStepGraphEager}) {
    cfg.shape = shape;
    cfg.declare_by_hand = false;
    sim::Machine m1(4);
    auto views = run_parallel_charmm(m1, cfg);
    cfg.declare_by_hand = true;
    sim::Machine m2(4);
    auto hand = run_parallel_charmm(m2, cfg);

    ASSERT_EQ(views.pos.size(), hand.pos.size());
    for (std::size_t i = 0; i < hand.pos.size(); ++i) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(views.pos[i][a], hand.pos[i][a])
            << "atom " << i << " shape " << static_cast<int>(shape);
        EXPECT_EQ(views.force[i][a], hand.force[i][a])
            << "atom " << i << " shape " << static_cast<int>(shape);
      }
    }
    // Same communication structure, not merely same physics: both arms
    // must have pipelined identically.
    EXPECT_EQ(views.steps_overlapped, hand.steps_overlapped);
    EXPECT_EQ(views.pipelined_gathers, hand.pipelined_gathers);
    EXPECT_EQ(views.hazard_stalls, hand.hazard_stalls);
    EXPECT_EQ(views.msgs_sent, hand.msgs_sent);
  }
}

TEST(CharmmStepGraph, MatchesSequentialTightlyWithoutListRebuilds) {
  // With no mid-run neighbor-list rebuild there is no amplification
  // channel: the graph's only deviation from the sequential reference is
  // float reassociation from its per-step scatter delivery, which stays at
  // last-bits scale over a short run.
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 4;
  run.nb_rebuild_every = 10;  // > steps: no rebuild inside the run
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  ASSERT_EQ(cfg.shape, CharmmShape::kStepGraph);  // primary by default
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 1e-7);
}

TEST(CharmmStepGraph, TracksSequentialPhysicsAcrossListRebuilds) {
  // Across rebuilds a last-bit position difference can flip a near-cutoff
  // pair in or out of the regenerated list, after which the (chaotic)
  // trajectories legitimately diverge — so this run is held to a physics
  // tolerance, not an arithmetic one. Schedule bugs produce O(1) errors
  // and still fail it; the arithmetic-level guarantee for the graph is the
  // bitwise pipelined-vs-eager test above.
  const auto sys_params = SystemParams::small(200);
  SequentialRunConfig run;
  run.steps = 4;
  run.nb_rebuild_every = 2;
  auto seq = run_sequential_charmm(MolecularSystem::generate(sys_params), run);

  ParallelCharmmConfig cfg;
  cfg.system = sys_params;
  cfg.run = run;
  cfg.collect_state = true;
  sim::Machine m(4);
  auto par = run_parallel_charmm(m, cfg);
  for (std::size_t i = 0; i < seq.pos.size(); ++i)
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(par.pos[i][a], seq.pos[i][a], 5e-3);
  EXPECT_EQ(par.phases.nb_rebuilds, seq.nb_rebuilds);
}

TEST(CharmmStepGraph, ReportsPerStepTraffic) {
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(240);
  cfg.run.steps = 4;
  cfg.run.nb_rebuild_every = 10;
  cfg.shape = CharmmShape::kStepGraph;
  sim::Machine m(4);
  auto r = run_parallel_charmm(m, cfg);

  ASSERT_EQ(r.step_traffic.size(), 3u);
  EXPECT_EQ(r.step_traffic[0].name, "bonded");
  EXPECT_EQ(r.step_traffic[1].name, "nonbonded");
  EXPECT_EQ(r.step_traffic[2].name, "integrate");
  // Both force steps move ghost traffic in both directions; the local
  // integrate step moves none.
  EXPECT_GT(r.step_traffic[0].gather_msgs, 0u);
  EXPECT_GT(r.step_traffic[0].write_msgs, 0u);
  EXPECT_GT(r.step_traffic[1].gather_bytes, 0u);
  EXPECT_EQ(r.step_traffic[2].gather_msgs, 0u);
  EXPECT_EQ(r.step_traffic[2].write_msgs, 0u);
}

TEST(CharmmStepGraph, PipeliningDoesNotSlowTheRunDown) {
  ParallelCharmmConfig cfg;
  cfg.system = SystemParams::small(300);
  cfg.run.steps = 6;
  cfg.run.nb_rebuild_every = 10;

  sim::Machine m1(4), m2(4);
  cfg.shape = CharmmShape::kStepGraph;
  auto pipelined = run_parallel_charmm(m1, cfg);
  cfg.shape = CharmmShape::kStepGraphEager;
  auto eager = run_parallel_charmm(m2, cfg);
  EXPECT_LE(pipelined.execution_time, eager.execution_time);
}

}  // namespace
}  // namespace chaos::charmm
