// Tests for the Fortran D embedding: distributions, aligned arrays,
// remapping, the inspector cache's modification records, and the
// forall/reduce lowerings.
#include <gtest/gtest.h>

#include <numeric>

#include "lang/distributed_array.hpp"
#include "lang/distribution.hpp"
#include "lang/forall.hpp"
#include "runtime/schedule_registry.hpp"
#include "util/rng.hpp"

namespace chaos::lang {
namespace {

using sim::Comm;
using sim::Machine;

TEST(Distribution, BlockMatchesLayout) {
  Machine m(3);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 10);
    part::BlockLayout l(10, 3);
    for (GlobalIndex g = 0; g < 10; ++g)
      EXPECT_EQ(d.table().lookup_local(g).proc, l.owner(g));
    EXPECT_EQ(d.owned_count(c.rank()), l.size_of(c.rank()));
  });
}

TEST(Distribution, CyclicMatchesLayout) {
  Machine m(3);
  m.run([](Comm& c) {
    auto d = Distribution::cyclic(c, 11);
    for (GlobalIndex g = 0; g < 11; ++g)
      EXPECT_EQ(d.table().lookup_local(g).proc, static_cast<int>(g % 3));
  });
}

TEST(Distribution, IrregularFollowsMapArray) {
  Machine m(2);
  m.run([](Comm& c) {
    std::vector<int> map{1, 0, 1, 0, 1};
    auto d = Distribution::irregular(c, map);
    for (GlobalIndex g = 0; g < 5; ++g)
      EXPECT_EQ(d.table().lookup_local(g).proc, map[static_cast<size_t>(g)]);
  });
}

TEST(Distribution, EpochsDistinguishInstances) {
  Machine m(1);
  m.run([](Comm& c) {
    auto d1 = Distribution::block(c, 4);
    auto d2 = Distribution::block(c, 4);
    EXPECT_NE(d1.epoch(), d2.epoch());
  });
}

TEST(DistributedArray, SizesFollowDistribution) {
  Machine m(2);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 7);
    DistributedArray<double> x(c, d);
    EXPECT_EQ(x.owned(), d.owned_count(c.rank()));
    x.ensure_extent(x.owned() + 3);
    EXPECT_EQ(static_cast<GlobalIndex>(x.local().size()), x.owned() + 3);
    EXPECT_THROW(x.ensure_extent(x.owned() - 1), Error);
  });
}

TEST(Remapper, MovesAlignedArraysBetweenDistributions) {
  Machine m(2);
  m.run([](Comm& c) {
    auto block = Distribution::block(c, 8);
    std::vector<int> swapped{1, 1, 1, 1, 0, 0, 0, 0};
    auto irreg = Distribution::irregular(c, swapped);

    DistributedArray<double> x(c, block);
    auto mine = block.owned_globals(c.rank());
    for (std::size_t i = 0; i < mine.size(); ++i)
      x[static_cast<GlobalIndex>(i)] = 100.0 + static_cast<double>(mine[i]);

    Remapper r(c, block, irreg);
    r.apply(c, x);

    auto new_mine = irreg.owned_globals(c.rank());
    ASSERT_EQ(x.owned(), static_cast<GlobalIndex>(new_mine.size()));
    for (std::size_t i = 0; i < new_mine.size(); ++i)
      EXPECT_EQ(x[static_cast<GlobalIndex>(i)],
                100.0 + static_cast<double>(new_mine[i]));
  });
}

TEST(ScheduleRegistry, ReusesPlanWhileUnchanged) {
  Machine m(2);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 20);
    runtime::ScheduleRegistry cache;
    IndirectionArray ind(
        c.rank() == 0 ? std::vector<GlobalIndex>{0, 10, 11}
                      : std::vector<GlobalIndex>{19, 1, 2});
    const LoopPlan& p1 = cache.plan(c, d, ind);
    (void)p1;
    const LoopPlan& p2 = cache.plan(c, d, ind);
    (void)p2;
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().reuses, 1u);
  });
}

TEST(ScheduleRegistry, RebuildsWhenIndirectionChanges) {
  Machine m(2);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 20);
    runtime::ScheduleRegistry cache;
    IndirectionArray ind(std::vector<GlobalIndex>{0, 1});
    cache.plan(c, d, ind);
    ind.assign({2, 3, 19});
    const LoopPlan& p = cache.plan(c, d, ind);
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(p.local_refs.size(), 3u);
  });
}

TEST(ScheduleRegistry, OneRanksChangeForcesGlobalRebuild) {
  // The modification record is checked globally: if only rank 0's list
  // changed, rank 1 must still participate in the rebuild collective.
  Machine m(2);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 20);
    runtime::ScheduleRegistry cache;
    IndirectionArray ind(std::vector<GlobalIndex>{0, 19});
    cache.plan(c, d, ind);
    if (c.rank() == 0) ind.assign({5, 6});
    cache.plan(c, d, ind);  // must not deadlock
    EXPECT_EQ(cache.stats().builds, 2u);
  });
}

TEST(ScheduleRegistry, DistributionChangeInvalidates) {
  Machine m(2);
  m.run([](Comm& c) {
    auto d1 = Distribution::block(c, 20);
    runtime::ScheduleRegistry cache;
    IndirectionArray ind(std::vector<GlobalIndex>{0, 19});
    cache.plan(c, d1, ind);
    auto d2 = Distribution::cyclic(c, 20);
    const LoopPlan& p = cache.plan(c, d2, ind);
    EXPECT_EQ(cache.stats().builds, 2u);
    // Under cyclic on 2 ranks each rank owns one of {0, 19} and fetches
    // the other; under the original block distribution rank 0 owned both.
    EXPECT_EQ(p.schedule.recv_total(c.rank()), 1);
  });
}

TEST(ForallReduceSum, MatchesSequentialReduction) {
  // x(ind(j)) += y(ind(j)) * 2 over a random indirection array, compared
  // against a sequential evaluation of the same loop.
  const int P = 4;
  const GlobalIndex N = 50;
  Machine m(P);

  // Sequential reference.
  std::vector<double> seq_y(static_cast<size_t>(N));
  for (GlobalIndex g = 0; g < N; ++g)
    seq_y[static_cast<size_t>(g)] = 1.0 + static_cast<double>(g);
  std::vector<double> seq_x(static_cast<size_t>(N), 0.0);
  std::vector<GlobalIndex> all_refs;
  {
    Rng rng(33);
    for (int r = 0; r < P; ++r)
      for (int k = 0; k < 30; ++k)
        all_refs.push_back(static_cast<GlobalIndex>(rng.below(N)));
    for (GlobalIndex g : all_refs)
      seq_x[static_cast<size_t>(g)] += 2.0 * seq_y[static_cast<size_t>(g)];
  }

  m.run([&](Comm& c) {
    auto d = Distribution::cyclic(c, N);
    DistributedArray<double> x(c, d), y(c, d);
    auto mine = d.owned_globals(c.rank());
    for (std::size_t i = 0; i < mine.size(); ++i)
      y[static_cast<GlobalIndex>(i)] = 1.0 + static_cast<double>(mine[i]);

    // This rank executes its slice of the reference stream.
    std::vector<GlobalIndex> refs(
        all_refs.begin() + c.rank() * 30,
        all_refs.begin() + (c.rank() + 1) * 30);
    runtime::ScheduleRegistry cache;
    IndirectionArray ind(refs);
    forall_reduce_sum(c, cache, d, ind, y, x,
                      [&](std::span<const GlobalIndex> lrefs) {
                        for (GlobalIndex j : lrefs) x[j] += 2.0 * y[j];
                      });

    for (std::size_t i = 0; i < mine.size(); ++i)
      EXPECT_NEAR(x[static_cast<GlobalIndex>(i)],
                  seq_x[static_cast<size_t>(mine[i])], 1e-12)
          << "global " << mine[i];
  });
}

TEST(ForallReduceSum, RepeatedExecutionsDoNotDoubleCount) {
  // Ghost accumulators must reset between executions.
  Machine m(2);
  m.run([](Comm& c) {
    auto d = Distribution::block(c, 10);
    DistributedArray<double> x(c, d), y(c, d);
    for (GlobalIndex i = 0; i < y.owned(); ++i) y[i] = 1.0;
    runtime::ScheduleRegistry cache;
    // Both ranks reference global 0 (owned by rank 0).
    IndirectionArray ind(std::vector<GlobalIndex>{0});
    for (int step = 0; step < 3; ++step) {
      for (GlobalIndex i = 0; i < x.owned(); ++i) x[i] = 0.0;
      forall_reduce_sum(c, cache, d, ind, y, x,
                        [&](std::span<const GlobalIndex> lrefs) {
                          for (GlobalIndex j : lrefs) x[j] += 1.0;
                        });
      if (c.rank() == 0) {
        EXPECT_EQ(x[0], 2.0) << "step " << step;
      }
    }
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().reuses, 2u);
  });
}

TEST(ReduceAppend, DeliversItemsToRowOwners) {
  Machine m(3);
  m.run([](Comm& c) {
    auto rows = Distribution::block(c, 9);  // 3 rows per rank
    // Each rank emits one item per global row.
    struct Item {
      GlobalIndex row;
      double v;
    };
    std::vector<Item> items;
    std::vector<GlobalIndex> dest;
    for (GlobalIndex r = 0; r < 9; ++r) {
      items.push_back(Item{r, static_cast<double>(c.rank())});
      dest.push_back(r);
    }
    std::vector<Item> received;
    reduce_append<Item>(c, rows, dest, items, received);
    EXPECT_EQ(received.size(), 9u);  // 3 rows x 3 ranks
    for (const auto& it : received)
      EXPECT_EQ(rows.table().lookup_local(it.row).proc, c.rank());
  });
}

TEST(RecomputeRowSizes, CountsMatchDeliveredItems) {
  Machine m(3);
  m.run([](Comm& c) {
    auto rows = Distribution::block(c, 6);
    // Rank r sends r+1 items to every row.
    std::vector<GlobalIndex> dest;
    for (GlobalIndex row = 0; row < 6; ++row)
      for (int k = 0; k <= c.rank(); ++k) dest.push_back(row);
    auto sizes = recompute_row_sizes(c, rows, dest);
    ASSERT_EQ(static_cast<GlobalIndex>(sizes.size()),
              rows.owned_count(c.rank()));
    // Every row receives 1+2+3 = 6 items in total.
    for (GlobalIndex s : sizes) EXPECT_EQ(s, 6);
  });
}

}  // namespace
}  // namespace chaos::lang
