// Direct tests of the mailbox matching queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "sim/mailbox.hpp"

namespace chaos::sim {
namespace {

Message make(int src, int tag, int value) {
  Message m;
  m.src = src;
  m.tag = tag;
  m.payload.resize(sizeof(int));
  std::memcpy(m.payload.data(), &value, sizeof(int));
  return m;
}

int value_of(const Message& m) {
  int v = 0;
  std::memcpy(&v, m.payload.data(), sizeof(int));
  return v;
}

TEST(Mailbox, PopMatchesSrcAndTag) {
  Mailbox mb;
  std::atomic<bool> aborted{false};
  mb.push(make(1, 10, 100));
  mb.push(make(2, 10, 200));
  mb.push(make(1, 20, 300));
  EXPECT_EQ(value_of(mb.pop(1, 20, aborted)), 300);
  EXPECT_EQ(value_of(mb.pop(2, 10, aborted)), 200);
  EXPECT_EQ(value_of(mb.pop(1, 10, aborted)), 100);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, FifoWithinSameSrcTag) {
  Mailbox mb;
  std::atomic<bool> aborted{false};
  for (int i = 0; i < 5; ++i) mb.push(make(0, 1, i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(value_of(mb.pop(0, 1, aborted)), i);
}

TEST(Mailbox, BlockingPopWakesOnPush) {
  Mailbox mb;
  std::atomic<bool> aborted{false};
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(make(3, 7, 77));
  });
  EXPECT_EQ(value_of(mb.pop(3, 7, aborted)), 77);
  producer.join();
}

TEST(Mailbox, AbortUnblocksPop) {
  Mailbox mb;
  std::atomic<bool> aborted{false};
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    aborted.store(true);
    mb.notify_abort();
  });
  EXPECT_THROW(mb.pop(0, 0, aborted), Aborted);
  aborter.join();
}

TEST(Mailbox, TryPopReturnsNulloptWithoutBlocking) {
  Mailbox mb;
  EXPECT_FALSE(mb.try_pop(0, 0, 1e9).has_value());
  mb.push(make(1, 10, 100));
  EXPECT_FALSE(mb.try_pop(1, 11, 1e9).has_value());  // tag mismatch
  EXPECT_FALSE(mb.try_pop(2, 10, 1e9).has_value());  // src mismatch
  EXPECT_EQ(mb.pending(), 1u);
}

TEST(Mailbox, TryPopRemovesExactMatch) {
  Mailbox mb;
  std::atomic<bool> aborted{false};
  mb.push(make(1, 10, 100));
  mb.push(make(1, 20, 200));
  auto m = mb.try_pop(1, 20, 1e9);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(value_of(*m), 200);
  EXPECT_EQ(mb.pending(), 1u);
  EXPECT_EQ(value_of(mb.pop(1, 10, aborted)), 100);
}

TEST(Mailbox, TryPopIsFifoWithinSameSrcTag) {
  Mailbox mb;
  for (int i = 0; i < 3; ++i) mb.push(make(0, 1, i));
  for (int i = 0; i < 3; ++i) {
    auto m = mb.try_pop(0, 1, 1e9);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(value_of(*m), i);
  }
  EXPECT_FALSE(mb.try_pop(0, 1, 1e9).has_value());
}

TEST(Mailbox, TryPopRespectsModeledArrivalTime) {
  // A physically queued message is invisible to the probe until the
  // caller's virtual clock reaches its arrival time.
  Mailbox mb;
  Message m = make(0, 1, 42);
  m.arrival = 5.0;
  mb.push(std::move(m));
  EXPECT_FALSE(mb.try_pop(0, 1, 4.99).has_value());  // still in transit
  EXPECT_EQ(mb.pending(), 1u);
  auto got = mb.try_pop(0, 1, 5.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(value_of(*got), 42);
}

TEST(Mailbox, PendingCountsQueued) {
  Mailbox mb;
  mb.push(make(0, 0, 1));
  mb.push(make(0, 1, 2));
  EXPECT_EQ(mb.pending(), 2u);
}

}  // namespace
}  // namespace chaos::sim
