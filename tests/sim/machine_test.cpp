// Unit tests for the simulated distributed-memory machine: point-to-point
// semantics, collectives, virtual clock algebra, determinism, and failure
// propagation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/machine.hpp"

namespace chaos::sim {
namespace {

TEST(Machine, SingleRankRuns) {
  Machine m(1);
  int witness = 0;
  m.run([&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    witness = 42;
  });
  EXPECT_EQ(witness, 42);
}

TEST(Machine, PointToPointDeliversData) {
  Machine m(2);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v{1, 2, 3, 4};
      c.send<int>(1, 7, v);
    } else {
      std::vector<int> got = c.recv<int>(0, 7);
      ASSERT_EQ(got.size(), 4u);
      EXPECT_EQ(got[0], 1);
      EXPECT_EQ(got[3], 4);
    }
  });
}

TEST(Machine, MessagesMatchedBySourceAndTag) {
  // Rank 2 receives tag 5 before tag 4 even though they were sent in the
  // opposite order; matching is by (src, tag), not arrival order.
  Machine m(3);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(2, 4, 40);
      c.send_value<int>(2, 5, 50);
    } else if (c.rank() == 1) {
      c.send_value<int>(2, 4, 41);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 5), 50);
      EXPECT_EQ(c.recv_value<int>(0, 4), 40);
      EXPECT_EQ(c.recv_value<int>(1, 4), 41);
    }
  });
}

TEST(Machine, SameSrcTagPreservesFifoOrder) {
  Machine m(2);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Machine, SelfSendWorks) {
  Machine m(2);
  m.run([](Comm& c) {
    c.send_value<int>(c.rank(), 1, c.rank() + 100);
    EXPECT_EQ(c.recv_value<int>(c.rank(), 1), c.rank() + 100);
  });
}

TEST(Machine, AllgatherCollectsRankContributions) {
  Machine m(5);
  m.run([](Comm& c) {
    std::vector<int> all = c.allgather(c.rank() * 2);
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(all[static_cast<size_t>(r)], 2 * r);
  });
}

TEST(Machine, AllgathervConcatenatesInRankOrder) {
  Machine m(4);
  m.run([](Comm& c) {
    // Rank r contributes r elements [r*10, r*10+r).
    std::vector<int> mine;
    for (int i = 0; i < c.rank(); ++i) mine.push_back(c.rank() * 10 + i);
    std::vector<std::size_t> counts;
    std::vector<int> all = c.allgatherv<int>(mine, &counts);
    ASSERT_EQ(all.size(), 0u + 1 + 2 + 3);
    ASSERT_EQ(counts.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(counts[static_cast<size_t>(r)], static_cast<size_t>(r));
    EXPECT_EQ(all[0], 10);  // rank 1's first element
    EXPECT_EQ(all[1], 20);
    EXPECT_EQ(all[2], 21);
    EXPECT_EQ(all[5], 32);
  });
}

TEST(Machine, AllreduceSumMaxMin) {
  Machine m(6);
  m.run([](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(c.rank()), 0 + 1 + 2 + 3 + 4 + 5);
    EXPECT_EQ(c.allreduce_max(c.rank()), 5);
    EXPECT_EQ(c.allreduce_min(10 - c.rank()), 5);
  });
}

TEST(Machine, AllreduceIsDeterministicForDoubles) {
  // Reduction is by ascending rank regardless of thread scheduling.
  Machine m(8);
  double first = 0;
  for (int trial = 0; trial < 5; ++trial) {
    double result = 0;
    m.run([&](Comm& c) {
      double v = 1.0 / (1.0 + c.rank() * 0.1);
      double s = c.allreduce_sum(v);
      if (c.rank() == 0) result = s;
    });
    if (trial == 0)
      first = result;
    else
      EXPECT_EQ(result, first);
  }
}

TEST(Machine, BcastDistributesRootData) {
  Machine m(4);
  m.run([](Comm& c) {
    std::vector<double> mine;
    if (c.rank() == 2) mine = {3.5, 4.5};
    std::vector<double> got = c.bcast<double>(mine, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], 3.5);
    EXPECT_EQ(got[1], 4.5);
  });
}

TEST(Machine, AlltoallExchangesPairwise) {
  Machine m(4);
  m.run([](Comm& c) {
    // value sent to rank r encodes (me, r)
    std::vector<int> sendbuf(4);
    for (int r = 0; r < 4; ++r)
      sendbuf[static_cast<size_t>(r)] = c.rank() * 100 + r;
    std::vector<int> got = c.alltoall<int>(sendbuf);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(got[static_cast<size_t>(r)], r * 100 + c.rank());
  });
}

TEST(Machine, AlltoallvSkipsEmptyAndDeliversAll) {
  Machine m(4);
  m.run([](Comm& c) {
    // Each rank sends its rank repeated (dest+1) times, but only to higher
    // ranks; lower destinations get nothing.
    std::vector<std::vector<int>> out(4);
    for (int r = c.rank() + 1; r < 4; ++r)
      out[static_cast<size_t>(r)].assign(static_cast<size_t>(r + 1), c.rank());
    auto in = c.alltoallv(out);
    for (int r = 0; r < 4; ++r) {
      if (r < c.rank()) {
        ASSERT_EQ(in[static_cast<size_t>(r)].size(),
                  static_cast<size_t>(c.rank() + 1));
        EXPECT_EQ(in[static_cast<size_t>(r)][0], r);
      } else {
        EXPECT_TRUE(in[static_cast<size_t>(r)].empty());
      }
    }
  });
}

TEST(Machine, BarrierSynchronizesClocks) {
  Machine m(3);
  m.run([](Comm& c) {
    // Rank 2 does a lot of work; after the barrier everyone's clock is at
    // least rank 2's pre-barrier time.
    if (c.rank() == 2) c.charge_work(1e6);
    const double before = c.now();
    c.barrier();
    EXPECT_GE(c.now(), before);
    EXPECT_GE(c.now(), 1e6 * c.model().params().seconds_per_work_unit);
  });
}

TEST(Machine, ClockAdvancesWithChargedWork) {
  Machine m(1);
  m.run([](Comm& c) {
    const double t0 = c.now();
    c.charge_work(2.0e6);  // 2M units at 2M units/s = 1 virtual second
    EXPECT_NEAR(c.now() - t0, 1.0, 1e-12);
    EXPECT_NEAR(c.stats().compute_s, 1.0, 1e-12);
  });
}

TEST(Machine, MessageCostsFollowModel) {
  CostParams p;
  Machine m(2, p);
  m.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> kb(1024, 0);
      c.send<std::uint8_t>(1, 1, kb);
      EXPECT_NEAR(c.now(), p.send_overhead, 1e-12);
    } else {
      c.recv<std::uint8_t>(0, 1);
      // Receiver waits for arrival: send_overhead + latency + 1024 bytes,
      // plus its own recv overhead.
      const double expect =
          p.send_overhead + p.latency + 1024 * p.byte_time + p.recv_overhead;
      EXPECT_NEAR(c.now(), expect, 1e-12);
    }
  });
  EXPECT_EQ(m.stats(0).msgs_sent, 1u);
  EXPECT_EQ(m.stats(0).bytes_sent, 1024u);
}

TEST(Machine, ExecutionTimeIsMaxClock) {
  Machine m(4);
  m.run([](Comm& c) { c.charge_work(1e6 * (c.rank() + 1)); });
  const double spu = m.model().params().seconds_per_work_unit;
  EXPECT_NEAR(m.execution_time(), 4e6 * spu, 1e-9);
  EXPECT_NEAR(m.mean_compute_time(), (1 + 2 + 3 + 4) / 4.0 * 1e6 * spu, 1e-9);
  // LB = max*n/sum = 4*4/10
  EXPECT_NEAR(m.load_balance(), 1.6, 1e-9);
}

TEST(Machine, RankErrorPropagatesAndOthersUnblock) {
  Machine m(3);
  EXPECT_THROW(
      m.run([](Comm& c) {
        if (c.rank() == 1) throw Error("deliberate failure");
        // Other ranks block forever waiting on a message that never comes;
        // the abort must wake them.
        c.recv<int>((c.rank() + 1) % 3, 99);
      }),
      Error);
  // Machine remains usable after a failed run.
  m.run([](Comm& c) { c.barrier(); });
}

TEST(Machine, ReusableAcrossRuns) {
  Machine m(4);
  for (int iter = 0; iter < 3; ++iter) {
    m.run([&](Comm& c) {
      int sum = c.allreduce_sum(c.rank() + iter);
      EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4 * iter);
    });
    EXPECT_GT(m.execution_time(), 0.0);
  }
}

TEST(Machine, ManyRanksStress) {
  // 64 ranks exchanging in a ring; exercises thread startup and mailbox
  // matching at scale.
  const int kP = 64;
  Machine m(kP);
  m.run([](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    c.send_value<int>(next, 0, c.rank());
    EXPECT_EQ(c.recv_value<int>(prev, 0), prev);
    c.barrier();
  });
}

TEST(Machine, VirtualTimesAreDeterministic) {
  // The full per-rank virtual clock must not depend on thread scheduling.
  std::vector<double> first;
  for (int trial = 0; trial < 3; ++trial) {
    Machine m(8);
    m.run([](Comm& c) {
      std::vector<std::vector<int>> out(8);
      for (int r = 0; r < 8; ++r)
        if (r != c.rank())
          out[static_cast<size_t>(r)].assign(
              static_cast<size_t>(c.rank() + 1), r);
      c.alltoallv(out);
      c.charge_work(100.0 * c.rank());
      c.barrier();
    });
    std::vector<double> clocks;
    for (int r = 0; r < 8; ++r) clocks.push_back(m.stats(r).clock);
    if (trial == 0)
      first = clocks;
    else
      EXPECT_EQ(clocks, first);
  }
}

TEST(CostModel, HypercubeSteps) {
  EXPECT_EQ(hypercube_steps(1), 0);
  EXPECT_EQ(hypercube_steps(2), 1);
  EXPECT_EQ(hypercube_steps(3), 2);
  EXPECT_EQ(hypercube_steps(4), 2);
  EXPECT_EQ(hypercube_steps(128), 7);
}

TEST(CostModel, TransferTimeScalesWithBytes) {
  CostModel cm(CostParams{});
  EXPECT_GT(cm.transfer_time(1000), cm.transfer_time(10));
  EXPECT_NEAR(cm.transfer_time(0), cm.params().latency, 1e-15);
}

class MachineParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MachineParamTest, AllgathervRoundTripAtManySizes) {
  const int P = GetParam();
  Machine m(P);
  m.run([&](Comm& c) {
    std::vector<long> mine(static_cast<size_t>(c.rank() * 3 + 1),
                           static_cast<long>(c.rank()));
    std::vector<std::size_t> counts;
    auto all = c.allgatherv<long>(mine, &counts);
    std::size_t expected = 0;
    for (int r = 0; r < P; ++r) expected += static_cast<size_t>(r * 3 + 1);
    EXPECT_EQ(all.size(), expected);
    // Check the block belonging to the last rank.
    for (std::size_t i = all.size() - counts.back(); i < all.size(); ++i)
      EXPECT_EQ(all[i], P - 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MachineParamTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33));

}  // namespace
}  // namespace chaos::sim
