// Tests for the later-added collective variants: the hypercube all-to-all
// used by schedule count exchanges, the unmodeled allgatherv used by the
// partitioner drivers, and analytic comm charging.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace chaos::sim {
namespace {

TEST(HypercubeAlltoall, ExchangesPairwiseValues) {
  for (int P : {1, 2, 3, 5, 8}) {
    Machine m(P);
    m.run([&](Comm& c) {
      std::vector<long> sendbuf(static_cast<size_t>(P));
      for (int r = 0; r < P; ++r)
        sendbuf[static_cast<size_t>(r)] = c.rank() * 1000 + r;
      auto got = c.alltoall_hypercube<long>(sendbuf);
      ASSERT_EQ(got.size(), static_cast<size_t>(P));
      for (int r = 0; r < P; ++r)
        EXPECT_EQ(got[static_cast<size_t>(r)], r * 1000 + c.rank())
            << "P=" << P;
    });
  }
}

TEST(HypercubeAlltoall, AgreesWithPointToPointAlltoall) {
  Machine m(6);
  m.run([](Comm& c) {
    std::vector<int> sendbuf(6);
    for (int r = 0; r < 6; ++r)
      sendbuf[static_cast<size_t>(r)] = c.rank() * 7 + r * 3;
    auto a = c.alltoall<int>(sendbuf);
    auto b = c.alltoall_hypercube<int>(sendbuf);
    EXPECT_EQ(a, b);
  });
}

TEST(HypercubeAlltoall, CheaperThanDenseAtScale) {
  // The motivation: at P=32, log(P) staged transfers must model cheaper
  // than 31 individual messages.
  const int P = 32;
  auto run_mode = [&](bool hypercube) {
    Machine m(P);
    m.run([&](Comm& c) {
      std::vector<std::int64_t> counts(static_cast<size_t>(P), 1);
      for (int rep = 0; rep < 10; ++rep) {
        if (hypercube)
          (void)c.alltoall_hypercube<std::int64_t>(counts);
        else
          (void)c.alltoall<std::int64_t>(counts);
      }
    });
    return m.execution_time();
  };
  EXPECT_LT(run_mode(true) * 2.0, run_mode(false));
}

TEST(UnmodeledAllgatherv, GathersWithoutCharges) {
  Machine m(4);
  m.run([](Comm& c) {
    std::vector<int> mine(static_cast<size_t>(c.rank()) + 1, c.rank());
    const double before = c.now();
    auto all = c.allgatherv_unmodeled<int>(mine);
    EXPECT_EQ(c.now(), before);  // free by contract
    ASSERT_EQ(all.size(), 1u + 2 + 3 + 4);
    EXPECT_EQ(all.front(), 0);
    EXPECT_EQ(all.back(), 3);
  });
}

TEST(ChargeCommSeconds, AdvancesClockIntoCommBucket) {
  Machine m(1);
  m.run([](Comm& c) {
    c.charge_comm_seconds(0.25);
    EXPECT_NEAR(c.now(), 0.25, 1e-12);
    EXPECT_NEAR(c.stats().comm_s, 0.25, 1e-12);
    EXPECT_EQ(c.stats().compute_s, 0.0);
    EXPECT_THROW(c.charge_comm_seconds(-1.0), Error);
  });
}

TEST(FreshTag, MonotoneAndAboveUserSpace) {
  Machine m(2);
  m.run([](Comm& c) {
    const int t1 = c.fresh_tag();
    const int t2 = c.fresh_tag();
    EXPECT_GE(t1, 1 << 20);
    EXPECT_GT(t2, t1);
    // Tags agree across ranks (SPMD contract): use them to communicate.
    if (c.rank() == 0)
      c.send_value<int>(1, t1, 99);
    else
      EXPECT_EQ(c.recv_value<int>(0, t1), 99);
  });
}

}  // namespace
}  // namespace chaos::sim
