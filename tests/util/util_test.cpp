// Tests for the utility layer: checks, RNG determinism, statistics, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace chaos {
namespace {

TEST(Check, PassingCheckDoesNothing) { CHAOS_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsWithContext) {
  try {
    CHAOS_CHECK(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, NormalHasPlausibleMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Stats, MeanMaxMin) {
  std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_NEAR(mean(v), 3.0, 1e-12);
  EXPECT_EQ(max_of(v), 6.0);
  EXPECT_EQ(min_of(v), 1.0);
}

TEST(Stats, LoadBalanceIndexPerfect) {
  std::vector<double> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(load_balance_index(v), 1.0, 1e-12);
}

TEST(Stats, LoadBalanceIndexSkewed) {
  // max=4, n=4, sum=8 -> LB = 2.0
  std::vector<double> v{4.0, 2.0, 1.0, 1.0};
  EXPECT_NEAR(load_balance_index(v), 2.0, 1e-12);
}

TEST(Stats, LoadBalanceOfZeroWorkIsOne) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_NEAR(load_balance_index(v), 1.0, 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  Table t("Demo");
  t.header({"Metric", "P=1", "P=2"});
  t.row({"Time", Table::num(1.5), Table::num(0.75)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

TEST(Table, NumPrecisionControl) {
  EXPECT_EQ(Table::num(3.14159, 1), "3.1");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace chaos
