// chaos::balance — unit tests for the policy/monitor decision layer plus
// service-level equivalence: an autonomic run (telemetry -> policy ->
// diffusion/rebuild -> retarget) must stay bitwise identical to a run
// that never rebalances, because a rebalance only relocates elements.
//
// Includes the tombstone regression: a rebalance fired right after
// delete_elements (holes present in the universe) must produce a valid
// successor — every dead id stays dead, every live id keeps exactly one
// owner — for both the diffusion and rebuild strategies.
//
// BalanceDrift.Randomized* honors the shared --seeds=N knob
// (tests/support/seeds.hpp); CI's stress label runs it with extra seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "balance/monitor.hpp"
#include "balance/policy.hpp"
#include "balance/service.hpp"
#include "lang/array.hpp"
#include "runtime/runtime.hpp"
#include "runtime/step_graph.hpp"
#include "sim/machine.hpp"
#include "support/seeds.hpp"
#include "util/rng.hpp"

namespace chaos {
namespace {

using core::GlobalIndex;
namespace ts = testing_support;

// ---- Policy (pure decision logic) --------------------------------------

balance::Window window_of(std::vector<double> load, int steps = 8) {
  balance::Window w;
  w.load = std::move(load);
  w.balance = load_balance_index(w.load);
  w.steps = steps;
  return w;
}

TEST(Policy, BalancedWindowIsNone) {
  balance::Policy p;
  EXPECT_EQ(p.decide(window_of({1.0, 1.0, 1.0, 1.0})),
            balance::Action::kNone);
}

TEST(Policy, SingleRankIsNone) {
  balance::Policy p;
  EXPECT_EQ(p.decide(window_of({10.0})), balance::Action::kNone);
}

TEST(Policy, ModerateDriftDiffuses) {
  // Balance 4*4/7 ≈ 2.29: above the 1.25 trigger, below the 2.5 rebuild
  // threshold.
  balance::Policy p;
  EXPECT_EQ(p.decide(window_of({4.0, 1.0, 1.0, 1.0})),
            balance::Action::kDiffuse);
}

TEST(Policy, LargeDriftRebuilds) {
  // Balance 9*4/12 = 3.0 > 2.5.
  balance::Policy p;
  EXPECT_EQ(p.decide(window_of({9.0, 1.0, 1.0, 1.0})),
            balance::Action::kRebuild);
}

TEST(Policy, FirstFireIsFreeThenCostGated) {
  balance::PolicyConfig cfg;
  cfg.payoff_horizon_steps = 8;
  balance::Policy p(cfg);
  const balance::Window w = window_of({4.0, 1.0, 1.0, 1.0});
  // No cost measured yet: fires.
  EXPECT_EQ(p.decide(w), balance::Action::kDiffuse);
  // Savings per step = (4 - 1.75) / 8 steps; over an 8-step horizon that
  // is 2.25s. A measured cost above it must gate the next fire...
  p.note_cost(50.0);
  EXPECT_EQ(p.decide(w), balance::Action::kNone);
  EXPECT_NE(p.reason(w, balance::Action::kNone).find("cost"),
            std::string::npos);
  // ...and the EMA decays toward cheap rebalances until it pays again
  // (50 halves below the 2.25s horizon savings after 5 cheap fires).
  for (int i = 0; i < 5; ++i) p.note_cost(0.0);
  EXPECT_EQ(p.decide(w), balance::Action::kDiffuse);
}

TEST(Policy, NoteCostIsEma) {
  balance::Policy p;
  p.note_cost(2.0);
  EXPECT_DOUBLE_EQ(p.cost_estimate(), 2.0);
  p.note_cost(4.0);
  EXPECT_DOUBLE_EQ(p.cost_estimate(), 3.0);  // 0.5*2 + 0.5*4
}

TEST(Policy, PredictedSavingsIsBottleneckExcess) {
  balance::Policy p;
  const balance::Window w = window_of({6.0, 2.0, 2.0, 2.0}, 4);
  // (max 6 - mean 3) / 4 steps.
  EXPECT_DOUBLE_EQ(p.predicted_savings_per_step(w), 0.75);
}

// ---- StepGraph::Stats windowed semantics (take_stats) ------------------

TEST(StepGraphStats, TakeStatsDrainsAndResets) {
  sim::Machine m(2);
  m.run([&](sim::Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(16);
    Array<double> x(rt, d, "x"), y(rt, d, "y");
    x.fill([](GlobalIndex g) { return static_cast<double>(g); });

    StepGraph g(rt);
    g.step("copy").bind(use(x), update(y)).compute([&] {
      for (GlobalIndex i = 0; i < x.owned(); ++i) y[i] = x[i];
    });

    for (int s = 0; s < 3; ++s) g.advance(false);
    StepGraph::Stats w1 = g.take_stats();
    EXPECT_EQ(w1.iterations, 3u);
    // The window is drained: an immediate second take sees nothing.
    EXPECT_EQ(g.take_stats().iterations, 0u);
    // The next window accumulates independently.
    g.advance(false);
    EXPECT_EQ(g.take_stats().iterations, 1u);
  });
}

// ---- Monitor windows over skewed charged work --------------------------

TEST(Monitor, WindowsIsolateSkewedLoad) {
  sim::Machine m(4);
  m.run([&](sim::Comm& c) {
    balance::Monitor mon(c, 3);
    EXPECT_FALSE(mon.window_full());

    // Window 1: rank r charges (r+1) units per step.
    for (int s = 0; s < 3; ++s) {
      c.charge_work(100.0 * (c.rank() + 1));
      mon.sample();
    }
    EXPECT_TRUE(mon.window_full());
    const balance::Window w1 = mon.close();
    EXPECT_EQ(w1.steps, 3);
    ASSERT_EQ(w1.load.size(), 4u);
    for (int r = 0; r + 1 < 4; ++r) EXPECT_LT(w1.load[r], w1.load[r + 1]);
    // Loads 1:2:3:4 -> index = 4 * 4 / 10.
    EXPECT_NEAR(w1.balance, 1.6, 1e-9);

    // close() opened a fresh window: uniform charges must show balanced,
    // unpolluted by window 1's skew.
    EXPECT_FALSE(mon.window_full());
    for (int s = 0; s < 3; ++s) {
      c.charge_work(100.0);
      mon.sample();
    }
    const balance::Window w2 = mon.close();
    EXPECT_NEAR(w2.balance, 1.0, 1e-9);
  });
}

// ---- Service-level equivalence harness ---------------------------------

struct MiniSpec {
  int P = 4;
  GlobalIndex n = 64;
  int window = 4;
  int pre_steps = 0;    ///< uniform-weight steps before install
  int post_steps = 12;  ///< skewed steps after install
  double skew = 6.0;
  double rebuild_balance = 3.5;  ///< lower it to force the rebuild strategy
  std::vector<GlobalIndex> dead;  ///< deleted right before install
  bool autonomic = true;
};

struct MiniOut {
  std::vector<double> x;  ///< final values by global id (dead slots 0)
  std::vector<GlobalIndex> owned_union;  ///< all ranks' owned ids, sorted
  GlobalIndex final_size = 0;
  std::vector<balance::Report> reports;
};

/// One irregular-halo loop over a block distribution; the top quarter of
/// the id space turns `skew`-hot once the policy is installed. Optionally
/// deletes `spec.dead` first, so the rebalance fires onto a universe with
/// holes.
MiniOut run_mini(const MiniSpec& spec) {
  MiniOut out;
  sim::Machine m(spec.P);
  m.run([&](sim::Comm& c) {
    Runtime rt(c);
    DistHandle d = rt.block(spec.n);
    Array<double> x(rt, d, "x"), y(rt, d, "y");
    x.fill([](GlobalIndex g) { return 1.0 + 0.25 * static_cast<double>(g); });

    // Replicated live-id list; refs point at the next live id (cyclic).
    std::vector<GlobalIndex> live(static_cast<std::size_t>(spec.n));
    for (std::size_t g = 0; g < live.size(); ++g)
      live[g] = static_cast<GlobalIndex>(g);

    bool drifting = false;
    const auto weight = [&](GlobalIndex g) {
      return (drifting && g >= 3 * spec.n / 4) ? spec.skew : 1.0;
    };

    std::vector<GlobalIndex> gids;
    lang::IndirectionArray ind;
    LoopHandle loop;
    ScheduleHandle sched;
    const auto build_loop = [&](DistHandle h) {
      gids = rt.owned_globals(h);
      std::vector<GlobalIndex> refs(gids.size());
      for (std::size_t k = 0; k < gids.size(); ++k) {
        auto it = std::upper_bound(live.begin(), live.end(), gids[k]);
        refs[k] = it == live.end() ? live.front() : *it;
      }
      // Leave the modification record alone when the refs are unchanged
      // (home stability), so the seeded registry can patch.
      const std::span<const GlobalIndex> old_refs = ind.values();
      if (!std::equal(refs.begin(), refs.end(), old_refs.begin(),
                      old_refs.end()))
        ind.assign(std::move(refs));
      loop = rt.bind(h, ind);
      sched = rt.inspect(loop);
    };
    build_loop(d);

    StepGraph g(rt);
    g.step("halo").bind(in(x).via(sched), update(y)).compute([&] {
      const std::span<const GlobalIndex> lr = rt.local_refs(loop);
      double work = 0;
      for (std::size_t k = 0; k < gids.size(); ++k) {
        const auto i = static_cast<GlobalIndex>(k);
        y[i] = 0.5 * x[i] + 0.25 * x[lr[k]] + 0.125;
        work += 50.0 * weight(gids[k]);
      }
      c.charge_work(work);
    });
    g.step("advance").bind(use(y), update(x)).compute([&] {
      for (GlobalIndex i = 0; i < x.owned(); ++i) x[i] = y[i];
      c.charge_work(2.0 * static_cast<double>(x.owned()));
    });

    for (int s = 0; s < spec.pre_steps; ++s) g.advance(false);

    if (!spec.dead.empty()) {
      g.quiesce();
      const DistHandle d1 =
          rt.delete_elements(d, std::span<const GlobalIndex>{spec.dead});
      const ScheduleHandle plan = rt.plan_remap(d, d1);
      x.retarget(plan, d1);
      y.retarget(plan, d1);
      std::vector<GlobalIndex> survivors;
      std::set_difference(live.begin(), live.end(), spec.dead.begin(),
                          spec.dead.end(), std::back_inserter(survivors));
      live = std::move(survivors);
      const ScheduleHandle old = sched;
      build_loop(d1);
      g.retarget(old, sched);
      rt.retire(d);
      d = d1;
    }

    drifting = true;
    if (spec.autonomic) {
      balance::Binding b;
      b.dist = d;
      b.manage(x);
      b.manage(y);
      b.points = [&] {
        std::vector<part::Point3> pts;
        for (GlobalIndex gid : rt.owned_globals(rt.balance_dist()))
          pts.push_back({static_cast<double>(gid), 0.0, 0.0});
        return pts;
      };
      b.weights = [&] {
        std::vector<double> ws;
        for (GlobalIndex gid : rt.owned_globals(rt.balance_dist()))
          ws.push_back(weight(gid));
        return ws;
      };
      b.remap = [&](DistHandle, DistHandle to) {
        const ScheduleHandle old = sched;
        build_loop(to);
        return std::vector<std::pair<ScheduleHandle, ScheduleHandle>>{
            {old, sched}};
      };
      balance::PolicyConfig pc;
      pc.window_steps = spec.window;
      pc.rebuild_balance = spec.rebuild_balance;
      rt.set_balance_policy(std::make_unique<balance::Policy>(pc),
                            std::move(b));
    }

    for (int s = 0; s < spec.post_steps; ++s) {
      g.advance(false);
      if (spec.autonomic) rt.balance_step(g);
    }
    g.quiesce();

    const DistHandle cur = spec.autonomic ? rt.balance_dist() : d;
    struct IdVal {
      GlobalIndex id;
      double v;
    };
    const std::vector<GlobalIndex> gl = rt.owned_globals(cur);
    std::vector<IdVal> mine(gl.size());
    for (std::size_t i = 0; i < gl.size(); ++i)
      mine[i] = IdVal{gl[i], x[static_cast<GlobalIndex>(i)]};
    const std::vector<IdVal> all =
        c.allgatherv<IdVal>(std::span<const IdVal>(mine));
    const std::vector<GlobalIndex> union_ids = [&] {
      std::vector<GlobalIndex> ids;
      for (const IdVal& iv : all) ids.push_back(iv.id);
      std::sort(ids.begin(), ids.end());
      return ids;
    }();
    if (c.rank() == 0) {
      out.x.assign(static_cast<std::size_t>(spec.n), 0.0);
      for (const IdVal& iv : all)
        out.x[static_cast<std::size_t>(iv.id)] = iv.v;
      out.owned_union = union_ids;
      out.final_size = rt.global_size(cur);
      out.reports = rt.balance_reports();
    }
  });
  return out;
}

std::vector<GlobalIndex> expect_live(GlobalIndex n,
                                     const std::vector<GlobalIndex>& dead) {
  std::vector<GlobalIndex> live;
  const std::set<GlobalIndex> d(dead.begin(), dead.end());
  for (GlobalIndex g = 0; g < n; ++g)
    if (!d.count(g)) live.push_back(g);
  return live;
}

void expect_equiv(const MiniOut& a, const MiniOut& oracle, GlobalIndex n,
                  const std::vector<GlobalIndex>& dead) {
  // Ownership validity: exactly the live ids, each owned once; no
  // tombstone resurrected.
  EXPECT_EQ(a.owned_union, expect_live(n, dead));
  EXPECT_EQ(a.final_size, oracle.final_size);
  // A rebalance relocates elements; it must not change a single bit of
  // the element values.
  ASSERT_EQ(a.x.size(), oracle.x.size());
  for (std::size_t g = 0; g < a.x.size(); ++g)
    ASSERT_EQ(a.x[g], oracle.x[g]) << "value diverged at global id " << g;
}

TEST(BalanceService, EndToEndFiresAndStaysBitwise) {
  MiniSpec spec;
  const MiniOut oracle = run_mini([&] {
    MiniSpec s = spec;
    s.autonomic = false;
    return s;
  }());
  const MiniOut auto_arm = run_mini(spec);

  expect_equiv(auto_arm, oracle, spec.n, spec.dead);
  ASSERT_GE(auto_arm.reports.size(), 1u);
  const balance::Report& r = auto_arm.reports.front();
  EXPECT_EQ(r.action, balance::Action::kDiffuse);
  EXPECT_GT(r.moved, 0);
  EXPECT_GT(r.balance_before, 1.25);
  EXPECT_LT(r.balance_predicted, r.balance_before);
}

TEST(BalanceService, RebalanceAfterDeleteDiffusion) {
  // Holes in the middle of the universe (rank 1's region), then a
  // diffusion fire: the successor must keep every hole dead.
  MiniSpec spec;
  spec.pre_steps = 4;
  for (GlobalIndex g = 20; g < 28; ++g) spec.dead.push_back(g);
  const MiniOut oracle = run_mini([&] {
    MiniSpec s = spec;
    s.autonomic = false;
    return s;
  }());
  const MiniOut auto_arm = run_mini(spec);

  expect_equiv(auto_arm, oracle, spec.n, spec.dead);
  ASSERT_GE(auto_arm.reports.size(), 1u);
  EXPECT_EQ(auto_arm.reports.front().action, balance::Action::kDiffuse);
}

TEST(BalanceService, RebalanceAfterDeleteRebuild) {
  // Same holes, but drift above the rebuild threshold: the geometric
  // rebuild path must also preserve tombstones.
  MiniSpec spec;
  spec.pre_steps = 4;
  spec.rebuild_balance = 1.5;  // measured drift (~2.7) exceeds this
  for (GlobalIndex g = 20; g < 28; ++g) spec.dead.push_back(g);
  const MiniOut oracle = run_mini([&] {
    MiniSpec s = spec;
    s.autonomic = false;
    return s;
  }());
  const MiniOut auto_arm = run_mini(spec);

  expect_equiv(auto_arm, oracle, spec.n, spec.dead);
  ASSERT_GE(auto_arm.reports.size(), 1u);
  EXPECT_EQ(auto_arm.reports.front().action, balance::Action::kRebuild);
}

// ---- Seeded drift fuzz -------------------------------------------------

TEST(BalanceDrift, RandomizedDriftEquivalence) {
  const std::uint64_t seeds = ts::seed_count(3, "CHAOS_BALANCE_SEEDS");
  const std::uint64_t base =
      ts::env_seed_u64("CHAOS_BALANCE_SEED_BASE", 1000);
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = base + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    MiniSpec spec;
    spec.P = 2 + static_cast<int>(rng.below(3));
    spec.n = 32 + static_cast<GlobalIndex>(rng.below(64));
    spec.window = 3;
    spec.post_steps = 3 * spec.window;
    spec.skew = 3.0 + static_cast<double>(rng.below(4));
    // Half the runs force the rebuild strategy instead of diffusion.
    if (rng.below(2) == 0) spec.rebuild_balance = 1.3;
    // Half the runs delete a random batch first, so fires land on holes.
    if (rng.below(2) == 0) {
      spec.pre_steps = spec.window;
      std::set<GlobalIndex> dead;
      const std::uint64_t ndead = 1 + rng.below(
          static_cast<std::uint64_t>(spec.n / 8));
      while (dead.size() < ndead)
        dead.insert(static_cast<GlobalIndex>(
            rng.below(static_cast<std::uint64_t>(spec.n))));
      spec.dead.assign(dead.begin(), dead.end());
    }

    const MiniOut oracle = run_mini([&] {
      MiniSpec o = spec;
      o.autonomic = false;
      return o;
    }());
    const MiniOut auto_arm = run_mini(spec);
    expect_equiv(auto_arm, oracle, spec.n, spec.dead);
    // Validity of every fired successor is implied by the end-state
    // checks; additionally every fire must have moved something.
    for (const balance::Report& r : auto_arm.reports) {
      EXPECT_NE(r.action, balance::Action::kNone);
      EXPECT_GT(r.moved, 0);
    }
  }
}

}  // namespace
}  // namespace chaos
