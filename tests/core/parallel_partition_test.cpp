// Tests for the parallel partitioner drivers: map validity, determinism
// across ranks, chain slab structure, and relative cost ordering.
#include <gtest/gtest.h>

#include "core/parallel_partition.hpp"
#include "core/translation_table.hpp"
#include "partition/metrics.hpp"
#include "util/rng.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;

struct Contribution {
  std::vector<GlobalIndex> ids;
  std::vector<part::Point3> pts;
  std::vector<double> w;
};

// Each rank contributes a BLOCK slice of a deterministic point set.
Contribution my_slice(Comm& c, GlobalIndex n, bool weighted) {
  Rng rng(77);  // same stream everywhere; slices cut from the same set
  std::vector<part::Point3> all(static_cast<size_t>(n));
  std::vector<double> weights(static_cast<size_t>(n));
  for (GlobalIndex g = 0; g < n; ++g) {
    all[static_cast<size_t>(g)] = {rng.uniform(), rng.uniform(),
                                   rng.uniform()};
    weights[static_cast<size_t>(g)] = weighted ? 0.5 + rng.uniform() : 1.0;
  }
  part::BlockLayout slabs(n, c.size());
  Contribution out;
  for (GlobalIndex g = slabs.first(c.rank());
       g < slabs.first(c.rank()) + slabs.size_of(c.rank()); ++g) {
    out.ids.push_back(g);
    out.pts.push_back(all[static_cast<size_t>(g)]);
    out.w.push_back(weights[static_cast<size_t>(g)]);
  }
  return out;
}

TEST(ParallelPartition, BlockNeedsNoGeometry) {
  Machine m(4);
  m.run([](Comm& c) {
    auto map = parallel_partition(c, PartitionerKind::kBlock, {}, {}, {}, 10);
    ASSERT_EQ(map.size(), 10u);
    part::BlockLayout l(10, 4);
    for (GlobalIndex g = 0; g < 10; ++g)
      EXPECT_EQ(map[static_cast<size_t>(g)], l.owner(g));
  });
}

class PartitionKinds : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(PartitionKinds, MapIsValidAndIdenticalOnAllRanks) {
  const PartitionerKind kind = GetParam();
  const int P = 4;
  const GlobalIndex n = 400;
  Machine m(P);
  m.run([&](Comm& c) {
    auto mine = my_slice(c, n, true);
    auto map = parallel_partition(c, kind, mine.ids, mine.pts, mine.w, n);
    ASSERT_EQ(map.size(), static_cast<size_t>(n));
    for (int p : map) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, P);
    }
    // All ranks must compute the identical map (checksum agreement).
    std::int64_t sum = 0;
    for (GlobalIndex g = 0; g < n; ++g)
      sum += map[static_cast<size_t>(g)] * (g + 1);
    auto sums = c.allgather(sum);
    for (std::int64_t s : sums) EXPECT_EQ(s, sum);
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, PartitionKinds,
                         ::testing::Values(PartitionerKind::kRcb,
                                           PartitionerKind::kRib,
                                           PartitionerKind::kChain));

TEST(ParallelPartition, WeightedBisectionBalancesLoad) {
  const int P = 8;
  const GlobalIndex n = 2000;
  Machine m(P);
  m.run([&](Comm& c) {
    auto mine = my_slice(c, n, true);
    auto map =
        parallel_partition(c, PartitionerKind::kRcb, mine.ids, mine.pts,
                           mine.w, n);
    if (c.rank() == 0) {
      // Reconstruct the full weights for the metric.
      Rng rng(77);
      std::vector<double> w(static_cast<size_t>(n));
      for (auto& x : w) {
        rng.uniform();
        rng.uniform();
        rng.uniform();  // skip the three coordinates
        x = 0.5 + rng.uniform();
      }
      EXPECT_LT(part::partition_load_balance(map, w, P), 1.15);
    }
  });
}

TEST(ParallelPartition, ChainProducesContiguousIdBlocks) {
  const int P = 4;
  const GlobalIndex n = 100;
  Machine m(P);
  m.run([&](Comm& c) {
    auto mine = my_slice(c, n, false);
    auto map = parallel_partition(c, PartitionerKind::kChain, mine.ids,
                                  mine.pts, mine.w, n);
    if (c.rank() == 0) {
      // Owners must be non-decreasing along the id order.
      for (GlobalIndex g = 1; g < n; ++g)
        EXPECT_GE(map[static_cast<size_t>(g)],
                  map[static_cast<size_t>(g) - 1]);
    }
  });
}

TEST(ParallelPartition, ChainIsMuchCheaperThanBisection) {
  const int P = 16;
  const GlobalIndex n = 20000;
  auto run_kind = [&](PartitionerKind kind) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto mine = my_slice(c, n, true);
      parallel_partition(c, kind, mine.ids, mine.pts, mine.w, n);
    });
    return m.execution_time();
  };
  EXPECT_LT(run_kind(PartitionerKind::kChain) * 3.0,
            run_kind(PartitionerKind::kRcb));
}

TEST(ParallelPartition, MapFeedsTranslationTable) {
  // End-to-end Phase A: partitioner output -> translation table.
  Machine m(3);
  m.run([](Comm& c) {
    auto mine = my_slice(c, 90, false);
    auto map = parallel_partition(c, PartitionerKind::kRib, mine.ids,
                                  mine.pts, mine.w, 90);
    auto table = TranslationTable::from_full_map(c, map);
    GlobalIndex total = 0;
    for (int p = 0; p < 3; ++p) total += table.owned_count(p);
    EXPECT_EQ(total, 90);
  });
}

TEST(ParallelPartition, RejectsNonDenseIds) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) {
                 // ids 0 and 5 on a 2-element domain: not a dense range.
                 std::vector<GlobalIndex> ids{c.rank() == 0 ? 0 : 5};
                 std::vector<part::Point3> pts{{0, 0, 0}};
                 std::vector<double> w{1.0};
                 parallel_partition(c, PartitionerKind::kRcb, ids, pts, w, 2);
               }),
               Error);
}

}  // namespace
}  // namespace chaos::core
