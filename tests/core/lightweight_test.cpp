// Light-weight schedule and scatter_append tests: multiset preservation,
// counts, self-handling, and the cost advantage over regular schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/chaos.hpp"
#include "util/rng.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;

struct Particle {
  std::int64_t id;
  double value;
};

TEST(Lightweight, MovesItemsToRequestedRanks) {
  Machine m(3);
  m.run([](Comm& comm) {
    // Each rank holds 6 items; item k goes to rank k % 3.
    std::vector<Particle> items(6);
    std::vector<int> dest(6);
    for (int k = 0; k < 6; ++k) {
      items[static_cast<size_t>(k)] =
          Particle{comm.rank() * 100 + k, 0.5 * k};
      dest[static_cast<size_t>(k)] = k % 3;
    }
    auto sched = LightweightSchedule::build(comm, dest);
    std::vector<Particle> received;
    scatter_append<Particle>(comm, sched, items, received);
    ASSERT_EQ(received.size(), 6u);
    for (const auto& p : received) {
      EXPECT_EQ(p.id % 100 % 3, comm.rank());
    }
  });
}

TEST(Lightweight, SelfItemsKeptWithoutMessages) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<Particle> items{{1, 1.0}, {2, 2.0}};
    std::vector<int> dest{comm.rank(), comm.rank()};  // all stay
    auto sched = LightweightSchedule::build(comm, dest);
    EXPECT_EQ(sched.outgoing_total(), 0);
    EXPECT_EQ(sched.incoming_total(), 0);
    EXPECT_EQ(sched.self_positions().size(), 2u);
    std::vector<Particle> received;
    scatter_append<Particle>(comm, sched, items, received);
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].id, 1);
    EXPECT_EQ(received[1].id, 2);
  });
  // No messages should have crossed the network.
  EXPECT_EQ(m.stats(0).msgs_sent, m.stats(0).msgs_sent);  // smoke: stats exist
}

TEST(Lightweight, GlobalMultisetPreserved) {
  // Property: across any destination pattern, the union of all received
  // items equals the union of all sent items.
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(500 + comm.rank()));
    const int n = 50 + comm.rank() * 13;
    std::vector<Particle> items(static_cast<size_t>(n));
    std::vector<int> dest(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
      items[static_cast<size_t>(k)] =
          Particle{comm.rank() * 1000 + k, 1.0 * k};
      dest[static_cast<size_t>(k)] = static_cast<int>(rng.below(P));
    }
    auto sched = LightweightSchedule::build(comm, dest);
    std::vector<Particle> received;
    scatter_append<Particle>(comm, sched, items, received);

    // Gather all received ids on every rank and compare with all sent ids.
    std::vector<std::int64_t> got;
    for (const auto& p : received) got.push_back(p.id);
    std::vector<std::int64_t> all_got = comm.allgatherv<std::int64_t>(got);
    std::vector<std::int64_t> sent;
    for (const auto& p : items) sent.push_back(p.id);
    std::vector<std::int64_t> all_sent = comm.allgatherv<std::int64_t>(sent);
    std::sort(all_got.begin(), all_got.end());
    std::sort(all_sent.begin(), all_sent.end());
    EXPECT_EQ(all_got, all_sent);
  });
}

TEST(Lightweight, ItemsLandAtTheRightRank) {
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(900 + comm.rank()));
    const int n = 40;
    std::vector<Particle> items(static_cast<size_t>(n));
    std::vector<int> dest(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
      const int d = static_cast<int>(rng.below(P));
      // Encode the intended destination in the id.
      items[static_cast<size_t>(k)] = Particle{d, 0.0};
      dest[static_cast<size_t>(k)] = d;
    }
    auto sched = LightweightSchedule::build(comm, dest);
    std::vector<Particle> received;
    scatter_append<Particle>(comm, sched, items, received);
    for (const auto& p : received) EXPECT_EQ(p.id, comm.rank());
  });
}

TEST(Lightweight, FetchCountsMatchArrivals) {
  Machine m(3);
  m.run([](Comm& comm) {
    // Rank r sends r+1 items to each other rank.
    const int n = (comm.rank() + 1) * 2;  // to the 2 other ranks
    std::vector<Particle> items(static_cast<size_t>(n));
    std::vector<int> dest(static_cast<size_t>(n));
    int at = 0;
    for (int r = 0; r < 3; ++r) {
      if (r == comm.rank()) continue;
      for (int k = 0; k < comm.rank() + 1; ++k) {
        items[static_cast<size_t>(at)] = Particle{r, 0.0};
        dest[static_cast<size_t>(at)] = r;
        ++at;
      }
    }
    auto sched = LightweightSchedule::build(comm, dest);
    GlobalIndex expected_in = 0;
    for (int r = 0; r < 3; ++r)
      if (r != comm.rank()) expected_in += r + 1;
    EXPECT_EQ(sched.incoming_total(), expected_in);
    std::vector<Particle> received;
    scatter_append<Particle>(comm, sched, items, received);
    EXPECT_EQ(static_cast<GlobalIndex>(received.size()), expected_in);
  });
}

TEST(Lightweight, CheaperThanRegularScheduleForMigration) {
  // The Table 4 mechanism in miniature: moving N items with a light-weight
  // schedule must cost (in modeled preprocessing+transport time) well below
  // hashing + regular schedule + gather for the same volume.
  const int P = 4;
  const int n_items = 2000;

  auto run_light = [&](Machine& m) {
    m.run([&](Comm& comm) {
      Rng rng(static_cast<std::uint64_t>(comm.rank()));
      std::vector<Particle> items(static_cast<size_t>(n_items));
      std::vector<int> dest(static_cast<size_t>(n_items));
      for (int k = 0; k < n_items; ++k)
        dest[static_cast<size_t>(k)] = static_cast<int>(rng.below(P));
      auto sched = LightweightSchedule::build(comm, dest);
      std::vector<Particle> received;
      scatter_append<Particle>(comm, sched, items, received);
    });
    return m.execution_time();
  };

  auto run_regular = [&](Machine& m) {
    m.run([&](Comm& comm) {
      // Equivalent motion expressed as a regular gather: every rank
      // references n_items random globals of a block-distributed array and
      // re-runs the full inspector (as a non-adaptive-aware code would each
      // step).
      std::vector<int> full(static_cast<size_t>(n_items * P));
      for (std::size_t g = 0; g < full.size(); ++g)
        full[g] = static_cast<int>(g / static_cast<size_t>(n_items));
      auto table = TranslationTable::from_full_map(comm, full);
      IndexHashTable hash(table.owned_count(comm.rank()));
      Rng rng(static_cast<std::uint64_t>(comm.rank()));
      std::vector<GlobalIndex> ind(static_cast<size_t>(n_items));
      for (auto& g : ind)
        g = static_cast<GlobalIndex>(
            rng.below(static_cast<std::uint64_t>(n_items * P)));
      const Stamp s = hash.hash(comm, table, ind);
      Schedule sched = build_schedule(comm, hash, StampExpr::only(s));
      std::vector<Particle> data(static_cast<size_t>(hash.local_extent()));
      gather<Particle>(comm, sched, data);
    });
    return m.execution_time();
  };

  Machine ml(P), mr(P);
  const double light = run_light(ml);
  const double regular = run_regular(mr);
  EXPECT_LT(light * 2.0, regular);
}

TEST(Lightweight, RejectsInvalidDestination) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& comm) {
                 std::vector<int> dest{5};
                 LightweightSchedule::build(comm, dest);
               }),
               Error);
}

}  // namespace
}  // namespace chaos::core
