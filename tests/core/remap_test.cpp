// Remap tests: moving distributed arrays between distributions (Phase B)
// and redistributing loop iterations (Phases C/D).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/chaos.hpp"
#include "core/owner_delta.hpp"
#include "support/equivalence.hpp"
#include "util/rng.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;
namespace ts = testing_support;

TEST(Remap, BlockToReversedDistribution) {
  // 8 elements, block on 2 ranks -> reversed ownership.
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<int> old_map{0, 0, 0, 0, 1, 1, 1, 1};
    std::vector<int> new_map{1, 1, 1, 1, 0, 0, 0, 0};
    auto old_t = TranslationTable::from_full_map(comm, old_map);
    auto new_t = TranslationTable::from_full_map(comm, new_map);

    auto mine = old_t.owned_globals(comm.rank());
    std::vector<double> old_data(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      old_data[i] = 10.0 * static_cast<double>(mine[i]);

    Schedule sched = build_remap_schedule(comm, mine, new_t);
    std::vector<double> new_data(
        static_cast<size_t>(new_t.owned_count(comm.rank())), -1.0);
    transport<double>(comm, sched, old_data, new_data);

    auto new_mine = new_t.owned_globals(comm.rank());
    for (std::size_t i = 0; i < new_mine.size(); ++i)
      EXPECT_EQ(new_data[i], 10.0 * static_cast<double>(new_mine[i]));
  });
}

TEST(Remap, IdentityRemapIsSelfCopyOnly) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<int> map{0, 1, 0, 1};
    auto t = TranslationTable::from_full_map(comm, map);
    auto mine = t.owned_globals(comm.rank());
    Schedule sched = build_remap_schedule(comm, mine, t);
    // No cross-rank traffic at all.
    EXPECT_EQ(sched.send_total(comm.rank()), 0);
    EXPECT_EQ(sched.recv_total(comm.rank()), 0);
    std::vector<double> src(mine.size()), dst(mine.size(), -1.0);
    for (std::size_t i = 0; i < mine.size(); ++i)
      src[i] = static_cast<double>(mine[i]);
    transport<double>(comm, sched, src, dst);
    EXPECT_EQ(src, dst);
  });
}

TEST(Remap, RandomRedistributionsPreserveAllValues) {
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& comm) {
    const GlobalIndex n = 300;
    Rng rng(2024);  // same seed everywhere: identical maps on all ranks
    std::vector<int> old_map(static_cast<size_t>(n)), new_map(
                                                          static_cast<size_t>(n));
    for (auto& p : old_map) p = static_cast<int>(rng.below(P));
    for (auto& p : new_map) p = static_cast<int>(rng.below(P));
    auto old_t = TranslationTable::from_full_map(comm, old_map);
    auto new_t = TranslationTable::from_full_map(comm, new_map);

    auto mine = old_t.owned_globals(comm.rank());
    std::vector<double> old_data(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      old_data[i] = 3.0 + static_cast<double>(mine[i]);

    Schedule sched = build_remap_schedule(comm, mine, new_t);
    std::vector<double> new_data(
        static_cast<size_t>(new_t.owned_count(comm.rank())), -1.0);
    transport<double>(comm, sched, old_data, new_data);

    auto new_mine = new_t.owned_globals(comm.rank());
    std::vector<double> expected(new_mine.size());
    for (std::size_t i = 0; i < new_mine.size(); ++i)
      expected[i] = 3.0 + static_cast<double>(new_mine[i]);
    EXPECT_TRUE(ts::spans_equal(new_data, expected, "remapped values"));
  });
}

// The delta-aware remap plan (cross-epoch reuse) must be bitwise identical
// to the cold plan — same blocks, same order — and move data identically.
TEST(Remap, DeltaPlanMatchesColdPlan) {
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& comm) {
    const GlobalIndex n = 200;
    Rng rng(515);
    std::vector<int> old_map(static_cast<size_t>(n));
    for (auto& p : old_map) p = static_cast<int>(rng.below(P));
    std::vector<int> new_map = old_map;
    // Boundary-style move plus some uniform scatter.
    for (std::size_t g = 150; g < new_map.size(); ++g)
      new_map[g] = static_cast<int>(rng.below(P));
    for (auto& p : new_map)
      if (rng.uniform() < 0.05) p = static_cast<int>(rng.below(P));

    auto old_t = TranslationTable::from_full_map(comm, old_map);
    auto new_t = TranslationTable::from_full_map(comm, new_map);
    const OwnerDelta delta = OwnerDelta::compute(old_map, new_map);

    auto mine = old_t.owned_globals(comm.rank());
    const Schedule cold = build_remap_schedule(comm, mine, new_t);
    const Schedule hot = build_remap_schedule_delta(comm, mine, new_t, delta);
    EXPECT_TRUE(ts::schedules_equal(hot, cold));

    std::vector<double> src(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      src[i] = static_cast<double>(mine[i] + 1);
    std::vector<double> via_cold(
        static_cast<size_t>(new_t.owned_count(comm.rank())), -1.0);
    std::vector<double> via_hot(via_cold.size(), -2.0);
    transport<double>(comm, cold, src, via_cold);
    transport<double>(comm, hot, src, via_hot);
    EXPECT_TRUE(ts::spans_equal(via_hot, via_cold, "remapped data"));
  });
}

TEST(Remap, SameScheduleRemapsMultipleAlignedArrays) {
  // The paper remaps every atom-aligned CHARMM array with one schedule.
  Machine m(3);
  m.run([](Comm& comm) {
    const GlobalIndex n = 60;
    Rng rng(77);
    std::vector<int> old_map(static_cast<size_t>(n)),
        new_map(static_cast<size_t>(n));
    for (auto& p : old_map) p = static_cast<int>(rng.below(3));
    for (auto& p : new_map) p = static_cast<int>(rng.below(3));
    auto old_t = TranslationTable::from_full_map(comm, old_map);
    auto new_t = TranslationTable::from_full_map(comm, new_map);
    auto mine = old_t.owned_globals(comm.rank());

    Schedule sched = build_remap_schedule(comm, mine, new_t);

    for (double scale : {1.0, 2.0, 5.0}) {
      std::vector<double> src(mine.size()), dst(
          static_cast<size_t>(new_t.owned_count(comm.rank())), -1.0);
      for (std::size_t i = 0; i < mine.size(); ++i)
        src[i] = scale * static_cast<double>(mine[i]);
      transport<double>(comm, sched, src, dst);
      auto new_mine = new_t.owned_globals(comm.rank());
      for (std::size_t i = 0; i < new_mine.size(); ++i)
        EXPECT_EQ(dst[i], scale * static_cast<double>(new_mine[i]));
    }
  });
}

// ---- Iteration partitioning ----------------------------------------------

TEST(Iteration, OwnerComputesFollowsFirstReference) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<int> map{0, 0, 1, 1};
    auto t = TranslationTable::from_full_map(comm, map);
    // Two iterations: (0,3) and (2,1).
    std::vector<GlobalIndex> refs{0, 3, 2, 1};
    auto assign = owner_computes(comm, t, refs, 2);
    EXPECT_EQ(assign, (std::vector<int>{0, 1}));
  });
}

TEST(Iteration, AlmostOwnerComputesTakesMajority) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<int> map{0, 0, 0, 1, 1, 1};
    auto t = TranslationTable::from_full_map(comm, map);
    // Iteration 0 references {0, 3, 4}: majority on rank 1.
    // Iteration 1 references {1, 2, 5}: majority on rank 0.
    // Iteration 2 references {0, 5, 3}: tie 1-2 -> rank 1 (two refs).
    std::vector<GlobalIndex> refs{0, 3, 4, 1, 2, 5, 0, 5, 3};
    auto assign = almost_owner_computes(comm, t, refs, 3);
    EXPECT_EQ(assign, (std::vector<int>{1, 0, 1}));
  });
}

TEST(Iteration, TieGoesToEarliestReferencedOwner) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<int> map{0, 1};
    auto t = TranslationTable::from_full_map(comm, map);
    // 1-1 ties: first reference wins.
    std::vector<GlobalIndex> refs{0, 1, 1, 0};
    auto assign = almost_owner_computes(comm, t, refs, 2);
    EXPECT_EQ(assign, (std::vector<int>{0, 1}));
  });
}

TEST(Iteration, RemapMovesIterationRecords) {
  Machine m(2);
  m.run([](Comm& comm) {
    // Each rank starts with 3 iterations; send odd global ids to rank 1,
    // even to rank 0.
    std::vector<GlobalIndex> ids;
    std::vector<GlobalIndex> refs;
    for (int k = 0; k < 3; ++k) {
      const GlobalIndex id = comm.rank() * 3 + k;
      ids.push_back(id);
      refs.push_back(id * 10);
      refs.push_back(id * 10 + 1);
    }
    std::vector<int> dest;
    for (GlobalIndex id : ids) dest.push_back(static_cast<int>(id % 2));

    auto result = remap_iterations(comm, dest, refs, 2, ids);
    for (std::size_t i = 0; i < result.iter_ids.size(); ++i) {
      EXPECT_EQ(result.iter_ids[i] % 2, comm.rank());
      EXPECT_EQ(result.refs[i * 2], result.iter_ids[i] * 10);
      EXPECT_EQ(result.refs[i * 2 + 1], result.iter_ids[i] * 10 + 1);
    }
    // All 6 iterations survive somewhere.
    const int total = comm.allreduce_sum(
        static_cast<int>(result.iter_ids.size()));
    EXPECT_EQ(total, 6);
  });
}

TEST(Iteration, RemapValidatesArity) {
  Machine m(1);
  EXPECT_THROW(m.run([](Comm& comm) {
                 std::vector<int> dest{0};
                 std::vector<GlobalIndex> refs{1, 2, 3};  // not 1*arity(2)
                 std::vector<GlobalIndex> ids{0};
                 remap_iterations(comm, dest, refs, 2, ids);
               }),
               Error);
}

}  // namespace
}  // namespace chaos::core
