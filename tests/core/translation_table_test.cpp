// Translation table tests: replicated vs distributed agreement, offset
// conventions, lookups, and error handling.
#include <gtest/gtest.h>

#include "core/owner_delta.hpp"
#include "core/translation_table.hpp"
#include "support/equivalence.hpp"
#include "util/rng.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;
namespace ts = testing_support;

// Slice a full map into rank r's BLOCK page.
std::vector<int> page_of(const std::vector<int>& full, int rank, int P) {
  part::BlockLayout pages(static_cast<GlobalIndex>(full.size()), P);
  std::vector<int> out;
  for (GlobalIndex g = pages.first(rank);
       g < pages.first(rank) + pages.size_of(rank); ++g)
    out.push_back(full[static_cast<size_t>(g)]);
  return out;
}

TEST(TranslationTable, ReplicatedAssignsOffsetsInGlobalOrder) {
  Machine m(2);
  m.run([](Comm& c) {
    // map: elements 0,2,4 -> proc 0; 1,3,5 -> proc 1
    std::vector<int> full{0, 1, 0, 1, 0, 1};
    auto t = TranslationTable::from_full_map(c, full);
    EXPECT_EQ(t.lookup_local(0), (Home{0, 0}));
    EXPECT_EQ(t.lookup_local(2), (Home{0, 1}));
    EXPECT_EQ(t.lookup_local(4), (Home{0, 2}));
    EXPECT_EQ(t.lookup_local(1), (Home{1, 0}));
    EXPECT_EQ(t.lookup_local(5), (Home{1, 2}));
    EXPECT_EQ(t.owned_count(0), 3);
    EXPECT_EQ(t.owned_count(1), 3);
  });
}

TEST(TranslationTable, BuildReplicatedFromSlices) {
  Machine m(3);
  m.run([](Comm& c) {
    std::vector<int> full{2, 2, 1, 0, 1, 0, 2, 1, 0};
    auto slice = page_of(full, c.rank(), c.size());
    auto t = TranslationTable::build_replicated(c, slice);
    EXPECT_EQ(t.global_size(), 9);
    for (GlobalIndex g = 0; g < 9; ++g)
      EXPECT_EQ(t.lookup_local(g).proc, full[static_cast<size_t>(g)]);
    EXPECT_EQ(t.owned_count(0), 3);
    EXPECT_EQ(t.owned_count(1), 3);
    EXPECT_EQ(t.owned_count(2), 3);
  });
}

TEST(TranslationTable, OwnedGlobalsMatchOffsets) {
  Machine m(2);
  m.run([](Comm& c) {
    std::vector<int> full{1, 0, 0, 1, 0};
    auto t = TranslationTable::from_full_map(c, full);
    auto mine = t.owned_globals(c.rank());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(t.lookup_local(mine[i]).proc, c.rank());
      EXPECT_EQ(t.lookup_local(mine[i]).offset,
                static_cast<GlobalIndex>(i));
    }
  });
}

TEST(TranslationTable, DistributedAgreesWithReplicated) {
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    Rng rng(99);
    std::vector<int> full(37);
    for (auto& p : full) p = static_cast<int>(rng.below(P));
    auto slice = page_of(full, c.rank(), P);
    auto repl = TranslationTable::from_full_map(c, full);
    auto dist = TranslationTable::build_distributed(c, slice);

    EXPECT_EQ(dist.global_size(), repl.global_size());
    for (int p = 0; p < P; ++p)
      EXPECT_EQ(dist.owned_count(p), repl.owned_count(p));

    // Every rank queries a scattered batch; answers must agree.
    std::vector<GlobalIndex> queries;
    for (GlobalIndex g = c.rank(); g < 37; g += 3) queries.push_back(g);
    auto from_dist = dist.lookup(c, queries);
    auto from_repl = repl.lookup(c, queries);
    ASSERT_EQ(from_dist.size(), from_repl.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      EXPECT_EQ(from_dist[i], from_repl[i]) << "g=" << queries[i];
  });
}

TEST(TranslationTable, DistributedLookupWithEmptyBatches) {
  Machine m(3);
  m.run([](Comm& c) {
    std::vector<int> full{0, 1, 2, 0, 1, 2};
    auto slice = page_of(full, c.rank(), c.size());
    auto dist = TranslationTable::build_distributed(c, slice);
    // Only rank 0 queries; others pass empty batches but still participate.
    std::vector<GlobalIndex> queries;
    if (c.rank() == 0) queries = {5, 0, 3};
    auto homes = dist.lookup(c, queries);
    if (c.rank() == 0) {
      ASSERT_EQ(homes.size(), 3u);
      EXPECT_EQ(homes[0], (Home{2, 1}));
      EXPECT_EQ(homes[1], (Home{0, 0}));
      EXPECT_EQ(homes[2], (Home{0, 1}));
    }
  });
}

TEST(TranslationTable, LookupRejectsOutOfRange) {
  Machine m(1);
  m.run([](Comm& c) {
    std::vector<int> full{0, 0};
    auto t = TranslationTable::from_full_map(c, full);
    EXPECT_THROW(t.lookup_local(2), Error);
    EXPECT_THROW(t.lookup_local(-1), Error);
  });
}

TEST(TranslationTable, RejectsInvalidProcInMap) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) {
                 std::vector<int> full{0, 5};  // proc 5 on a 2-rank machine
                 TranslationTable::from_full_map(c, full);
               }),
               Error);
}

// Cross-epoch patching: for random old/new map pairs, the patched table
// (copy old, re-derive only unstable entries) must equal a cold build from
// the new map — in both storage modes.
TEST(TranslationTable, PatchedEqualsColdBuildInBothModes) {
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
      Rng rng(91 + trial);
      const GlobalIndex n = 64 + static_cast<GlobalIndex>(rng.below(100));
      std::vector<int> old_map(static_cast<size_t>(n)),
          new_map(static_cast<size_t>(n));
      for (auto& p : old_map) p = static_cast<int>(rng.below(P));
      new_map = old_map;
      for (auto& p : new_map)
        if (rng.uniform() < 0.2) p = static_cast<int>(rng.below(P));
      const OwnerDelta delta = OwnerDelta::compute(old_map, new_map);

      // Replicated.
      auto old_r = TranslationTable::from_full_map(c, old_map);
      auto cold_r = TranslationTable::from_full_map(c, new_map);
      auto hot_r = TranslationTable::patched(c, old_r, new_map, delta);
      EXPECT_TRUE(ts::tables_equal(hot_r, cold_r)) << "trial " << trial;
      EXPECT_TRUE(hot_r == cold_r);

      // Distributed (paged).
      auto old_d = TranslationTable::build_distributed(
          c, page_of(old_map, c.rank(), P));
      auto cold_d = TranslationTable::build_distributed(
          c, page_of(new_map, c.rank(), P));
      auto hot_d = TranslationTable::patched(c, old_d, new_map, delta);
      EXPECT_TRUE(ts::tables_equal(hot_d, cold_d)) << "trial " << trial;
    }
  });
}

TEST(TranslationTable, LargeRandomMapRoundTrip) {
  const int P = 8;
  Machine m(P);
  m.run([&](Comm& c) {
    Rng rng(7);
    std::vector<int> full(10000);
    for (auto& p : full) p = static_cast<int>(rng.below(P));
    auto t = TranslationTable::from_full_map(c, full);
    // Owned counts sum to the global size.
    GlobalIndex total = 0;
    for (int p = 0; p < P; ++p) total += t.owned_count(p);
    EXPECT_EQ(total, 10000);
    // Offsets are dense per processor: the set of offsets for proc k is
    // exactly [0, owned_count(k)).
    if (c.rank() == 0) {
      std::vector<std::vector<bool>> seen(P);
      for (int p = 0; p < P; ++p)
        seen[static_cast<size_t>(p)].assign(
            static_cast<size_t>(t.owned_count(p)), false);
      for (GlobalIndex g = 0; g < 10000; ++g) {
        const Home h = t.lookup_local(g);
        ASSERT_LT(h.offset, t.owned_count(h.proc));
        ASSERT_FALSE(
            seen[static_cast<size_t>(h.proc)][static_cast<size_t>(h.offset)]);
        seen[static_cast<size_t>(h.proc)][static_cast<size_t>(h.offset)] =
            true;
      }
    }
  });
}

}  // namespace
}  // namespace chaos::core
