// Transport edge cases and comm::Engine semantics at the core layer:
// empty schedules, self-block-only schedules, per-peer coalescing of
// independent posted schedules, tag-disjoint overlapping batches waited
// out of order, the non-blocking completion probe, and engine-posted
// light-weight migration.
#include <gtest/gtest.h>

#include "comm/engine.hpp"
#include "core/lightweight.hpp"
#include "core/transport.hpp"

namespace chaos::core {
namespace {

using comm::CommHandle;
using comm::Engine;
using sim::Comm;
using sim::Machine;

// Two ranks, each with 4 owned slots and 2 ghost slots (extent 6).
// data[i] starts as rank*100 + i for owned slots, -1 for ghosts.
std::vector<double> initial_data(int rank) {
  std::vector<double> d(6, -1.0);
  for (int i = 0; i < 4; ++i) d[static_cast<std::size_t>(i)] = rank * 100 + i;
  return d;
}

/// A symmetric two-rank exchange schedule: ship my `send_idx` to the peer;
/// the peer's elements land at my `recv_idx`.
Schedule two_rank_exchange(int me, std::vector<GlobalIndex> send_idx,
                           std::vector<GlobalIndex> recv_idx) {
  const int peer = 1 - me;
  std::vector<ScheduleBlock> send, recv;
  if (!send_idx.empty()) send.push_back({peer, std::move(send_idx)});
  if (!recv_idx.empty()) recv.push_back({peer, std::move(recv_idx)});
  return Schedule(std::move(send), std::move(recv));
}

// ---- edge cases ------------------------------------------------------------

TEST(TransportEdge, EmptyScheduleIsANoOp) {
  Machine m(2);
  m.run([](Comm& comm) {
    std::vector<double> data = initial_data(comm.rank());
    const std::vector<double> before = data;
    const Schedule empty;

    gather<double>(comm, empty, data);
    scatter_add<double>(comm, empty, data);

    Engine engine(comm);
    const CommHandle h = engine.post_gather<double>(empty, data);
    EXPECT_TRUE(engine.done(h));  // nothing to receive
    engine.wait(h);

    EXPECT_EQ(data, before);
    EXPECT_EQ(comm.stats().msgs_sent, 0u);
  });
}

TEST(TransportEdge, SelfBlockOnlyScheduleCopiesLocally) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    std::vector<ScheduleBlock> send{{me, {0, 1}}};
    std::vector<ScheduleBlock> recv{{me, {4, 5}}};
    const Schedule sched(std::move(send), std::move(recv));

    std::vector<double> data = initial_data(me);
    gather<double>(comm, sched, data);

    EXPECT_EQ(data[4], data[0]);
    EXPECT_EQ(data[5], data[1]);
    EXPECT_EQ(comm.stats().msgs_sent, 0u);
  });
}

TEST(TransportEdge, GatherPlacesPeerElementsAtGhostSlots) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    const Schedule sched = two_rank_exchange(me, {0, 1}, {4, 5});
    std::vector<double> data = initial_data(me);
    gather<double>(comm, sched, data);
    EXPECT_EQ(data[4], peer * 100 + 0);
    EXPECT_EQ(data[5], peer * 100 + 1);
  });
}

TEST(TransportEdge, MultipleBlocksPerPeerDeliverInBlockOrder) {
  // The Schedule constructor accepts several blocks for the same peer;
  // the blocking loops historically paired sender block i with receiver
  // block i via FIFO messages, and the engine must preserve that pairing
  // within its coalesced message. Blocks have different sizes so any
  // mispairing trips the segment-size check instead of passing silently.
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    std::vector<ScheduleBlock> send{{peer, {0}}, {peer, {1, 2}}};
    std::vector<ScheduleBlock> recv{{peer, {4}}, {peer, {5, 3}}};
    const Schedule sched(std::move(send), std::move(recv));

    std::vector<double> data = initial_data(me);
    gather<double>(comm, sched, data);

    EXPECT_EQ(data[4], peer * 100 + 0);
    EXPECT_EQ(data[5], peer * 100 + 1);
    EXPECT_EQ(data[3], peer * 100 + 2);
    EXPECT_EQ(comm.stats().msgs_sent, 1u);  // still one coalesced message
  });
}

// ---- coalescing ------------------------------------------------------------

TEST(CommEngine, CoalescesIndependentSchedulesIntoOneMessagePerPeer) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    // Two independent schedules with disjoint slots.
    const Schedule a = two_rank_exchange(me, {0}, {4});
    const Schedule b = two_rank_exchange(me, {1}, {5});
    std::vector<double> data = initial_data(me);

    Engine engine(comm);
    const CommHandle ha = engine.post_gather<double>(a, data);
    const CommHandle hb = engine.post_gather<double>(b, data);
    EXPECT_EQ(comm.stats().msgs_sent, 0u);  // staged, not sent
    engine.flush();
    EXPECT_EQ(comm.stats().msgs_sent, 1u);  // ONE message for both schedules
    engine.wait(ha);
    engine.wait(hb);

    EXPECT_EQ(data[4], peer * 100 + 0);
    EXPECT_EQ(data[5], peer * 100 + 1);
    EXPECT_EQ(comm.stats().coalesced_msgs_sent, 1u);
    EXPECT_EQ(comm.stats().coalesced_segments, 2u);
    EXPECT_EQ(comm.stats().coalesced_bytes_sent, 2 * sizeof(double));
  });
}

TEST(CommEngine, BlockingWrapperSendsOneMessagePerSchedule) {
  // The historical behavior the engine improves on: each blocking call is
  // its own flush, so two schedules cost two messages per peer.
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const Schedule a = two_rank_exchange(me, {0}, {4});
    const Schedule b = two_rank_exchange(me, {1}, {5});
    std::vector<double> data = initial_data(me);
    gather<double>(comm, a, data);
    gather<double>(comm, b, data);
    EXPECT_EQ(comm.stats().msgs_sent, 2u);
  });
}

// ---- overlap ---------------------------------------------------------------

TEST(CommEngine, OverlappingBatchesUseDisjointTagsAndWaitOutOfOrder) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    const Schedule a = two_rank_exchange(me, {0}, {4});
    const Schedule b = two_rank_exchange(me, {1}, {5});
    std::vector<double> data = initial_data(me);

    Engine engine(comm);
    const CommHandle ha = engine.post_gather<double>(a, data);
    engine.flush();  // batch 0 in flight
    const CommHandle hb = engine.post_gather<double>(b, data);
    engine.flush();  // batch 1 in flight alongside batch 0

    engine.wait(hb);  // out-of-order wait completes the earlier batch too
    EXPECT_TRUE(engine.done(ha));
    engine.wait(ha);

    EXPECT_EQ(data[4], peer * 100 + 0);
    EXPECT_EQ(data[5], peer * 100 + 1);
    EXPECT_TRUE(engine.idle());
  });
}

TEST(CommEngine, WaitFlushesTheOpenBatchImplicitly) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    const Schedule a = two_rank_exchange(me, {2}, {5});
    std::vector<double> data = initial_data(me);
    Engine engine(comm);
    const CommHandle h = engine.post_gather<double>(a, data);
    engine.wait(h);  // no explicit flush
    EXPECT_EQ(data[5], peer * 100 + 2);
  });
}

TEST(CommEngine, TestProbeEventuallyCompletesWithoutBlocking) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    const Schedule a = two_rank_exchange(me, {3}, {4});
    std::vector<double> data = initial_data(me);
    Engine engine(comm);
    const CommHandle h = engine.post_gather<double>(a, data);
    EXPECT_FALSE(engine.test(h));  // still in the open batch
    engine.flush();
    // The probe is gated on modeled arrival, so a polling loop must burn
    // virtual cycles to make progress (and may also have to wait, in real
    // time, for the peer thread to reach its flush).
    while (!engine.test(h)) comm.charge_work(1000.0);
    EXPECT_EQ(data[4], peer * 100 + 3);
  });
}

// ---- scatter through the engine -------------------------------------------

TEST(CommEngine, ScatterAddCombinesGhostContributions) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    // Forward shape: peer fetched my element 0 into its ghost slot 4.
    const Schedule sched = two_rank_exchange(me, {0}, {4});
    std::vector<double> data = initial_data(me);
    data[4] = 1000 + me;  // ghost contribution to send back

    Engine engine(comm);
    engine.post_scatter_add<double>(sched, data);
    engine.flush();
    engine.wait_all();

    // My owned element 0 combined the peer's ghost contribution.
    EXPECT_EQ(data[0], me * 100 + 0 + 1000 + (1 - me));
  });
}

TEST(CommEngine, ScatterReplacesAtOwner) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const Schedule sched = two_rank_exchange(me, {1}, {5});
    std::vector<double> data = initial_data(me);
    data[5] = 7000 + me;

    Engine engine(comm);
    engine.wait(engine.post_scatter<double>(sched, data));
    EXPECT_EQ(data[1], 7000 + (1 - me));
  });
}

// ---- light-weight migration ------------------------------------------------

TEST(CommEngine, PostedMigrateAppendsSelfThenArrivals) {
  Machine m(2);
  m.run([](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    // Each rank keeps item 0 and ships item 1 to the peer.
    const std::vector<int> items{10 * (me + 1), 10 * (me + 1) + 1};
    const std::vector<int> dest{me, peer};
    auto sched = LightweightSchedule::build(comm, dest);

    std::vector<int> out;
    Engine engine(comm);
    const CommHandle h =
        engine.post_migrate<int>(std::move(sched), items, out);
    // Items that stay local are visible immediately after the post.
    EXPECT_EQ(out, (std::vector<int>{10 * (me + 1)}));
    engine.flush();
    engine.wait(h);
    EXPECT_EQ(out, (std::vector<int>{10 * (me + 1), 10 * (peer + 1) + 1}));
  });
}

}  // namespace
}  // namespace chaos::core
