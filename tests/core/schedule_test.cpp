// Schedule generation and transport tests, including a golden test of the
// paper's Figure 6 worked example and randomized property sweeps over
// processor counts and distributions.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/chaos.hpp"
#include "util/rng.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;

// ---- Figure 6 golden test -------------------------------------------------
//
// The paper's example (converted to 0-based indices): data array y with 10
// elements; proc 0 owns globals 0..4, proc 1 owns globals 5..9. Processor 0
// hashes three indirection arrays:
//   ia = {0, 2, 6, 8, 1}   (paper: 1,3,7,9,2)
//   ib = {0, 4, 6, 7, 1}   (paper: 1,5,7,8,2)
//   ic = {3, 2, 9, 7, 8}   (paper: 4,3,10,8,9)
// Expected off-processor fetch sets (0-based globals):
//   sched_A   (stamp a)    -> {6, 8}        (paper: 7, 9)
//   sched_B   (stamp b)    -> {6, 7}        (paper: 7, 8)
//   inc_schedB(stamp b-a)  -> {7}           (paper: 8)
//   merged    (a+b+c)      -> {6, 8, 7, 9}  (paper: 7, 9, 8, 10)

struct Fig6 {
  TranslationTable table;
  IndexHashTable hash;
  Stamp a = 0, b = 0, c = 0;
  std::vector<GlobalIndex> ia, ib, ic;
};

Fig6 setup_figure6(Comm& comm) {
  std::vector<int> full{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  Fig6 f{TranslationTable::from_full_map(comm, full),
         IndexHashTable(comm.rank() == 0 ? 5 : 5),
         0,
         0,
         0,
         {},
         {},
         {}};
  if (comm.rank() == 0) {
    f.ia = {0, 2, 6, 8, 1};
    f.ib = {0, 4, 6, 7, 1};
    f.ic = {3, 2, 9, 7, 8};
  }
  f.a = f.hash.hash(comm, f.table, f.ia);
  f.b = f.hash.hash(comm, f.table, f.ib);
  f.c = f.hash.hash(comm, f.table, f.ic);
  return f;
}

// The globals fetched by a schedule, from rank 1's send side (send offsets
// + 5 = the 0-based global ids it ships).
std::vector<GlobalIndex> fetched_globals_rank1(const Schedule& s) {
  std::vector<GlobalIndex> out;
  for (const auto& blk : s.send_blocks())
    for (GlobalIndex off : blk.indices) out.push_back(off + 5);
  return out;
}

TEST(Figure6, ScheduleAFetches7And9) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s = build_schedule(comm, f.hash, StampExpr::only(f.a));
    if (comm.rank() == 1) {
      EXPECT_EQ(fetched_globals_rank1(s), (std::vector<GlobalIndex>{6, 8}));
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(s.recv_total(0), 2);
      EXPECT_EQ(s.send_total(0), 0);
    }
  });
}

TEST(Figure6, ScheduleBFetches7And8) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s = build_schedule(comm, f.hash, StampExpr::only(f.b));
    if (comm.rank() == 1) {
      EXPECT_EQ(fetched_globals_rank1(s), (std::vector<GlobalIndex>{6, 7}));
    }
  });
}

TEST(Figure6, IncrementalScheduleBMinusAFetchesOnly8) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s =
        build_schedule(comm, f.hash, StampExpr::incremental(f.b, f.a));
    if (comm.rank() == 1) {
      EXPECT_EQ(fetched_globals_rank1(s), (std::vector<GlobalIndex>{7}));
    }
  });
}

TEST(Figure6, MergedScheduleFetchesAllFour) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s =
        build_schedule(comm, f.hash, StampExpr::merged({f.a, f.b, f.c}));
    if (comm.rank() == 1) {
      EXPECT_EQ(fetched_globals_rank1(s),
                (std::vector<GlobalIndex>{6, 8, 7, 9}));
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(s.recv_total(0), 4);
    }
  });
}

TEST(Figure6, TranslatedIndirectionArraysMatchHandComputation) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    if (comm.rank() != 0) return;
    // Owned region is 5 elements; ghosts 6,8,7,9 get slots 5,6,7,8.
    EXPECT_EQ(f.ia, (std::vector<GlobalIndex>{0, 2, 5, 6, 1}));
    EXPECT_EQ(f.ib, (std::vector<GlobalIndex>{0, 4, 5, 7, 1}));
    EXPECT_EQ(f.ic, (std::vector<GlobalIndex>{3, 2, 8, 7, 6}));
  });
}

TEST(Figure6, GatherDeliversExpectedValues) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s =
        build_schedule(comm, f.hash, StampExpr::merged({f.a, f.b, f.c}));
    // y[g] = 100 + g on its owner.
    std::vector<double> y(static_cast<size_t>(f.hash.local_extent()), -1.0);
    for (int k = 0; k < 5; ++k)
      y[static_cast<size_t>(k)] = 100.0 + comm.rank() * 5 + k;
    gather<double>(comm, s, y);
    if (comm.rank() == 0) {
      // slots 5..8 hold globals 6,8,7,9
      EXPECT_EQ(y[5], 106.0);
      EXPECT_EQ(y[6], 108.0);
      EXPECT_EQ(y[7], 107.0);
      EXPECT_EQ(y[8], 109.0);
    }
  });
}

// ---- Randomized gather/scatter properties --------------------------------

struct RandomSetup {
  TranslationTable table;
  std::vector<GlobalIndex> my_globals;  // owned, in offset order
};

RandomSetup random_distribution(Comm& comm, GlobalIndex n, int seed) {
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<int> full(static_cast<size_t>(n));
  for (auto& p : full) p = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(comm.size())));
  auto table = TranslationTable::from_full_map(comm, full);
  auto mine = table.owned_globals(comm.rank());
  return RandomSetup{std::move(table), std::move(mine)};
}

class GatherScatterSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GatherScatterSweep, GatherFetchesCorrectValuesEverywhere) {
  const auto [P, n] = GetParam();
  Machine m(P);
  m.run([&, n = n](Comm& comm) {
    auto setup = random_distribution(comm, n, 1234 + P + n);
    IndexHashTable hash(setup.table.owned_count(comm.rank()));
    // Every rank references a random batch of global elements.
    Rng rng(static_cast<std::uint64_t>(77 + comm.rank()));
    std::vector<GlobalIndex> ind(static_cast<size_t>(3 * n / (P + 1) + 5));
    for (auto& g : ind)
      g = static_cast<GlobalIndex>(rng.below(static_cast<std::uint64_t>(n)));
    std::vector<GlobalIndex> original = ind;
    const Stamp s = hash.hash(comm, setup.table, ind);
    Schedule sched = build_schedule(comm, hash, StampExpr::only(s));

    std::vector<double> data(static_cast<size_t>(hash.local_extent()), -1.0);
    for (std::size_t i = 0; i < setup.my_globals.size(); ++i)
      data[i] = 1000.0 + static_cast<double>(setup.my_globals[i]);
    gather<double>(comm, sched, data);

    // Every translated reference now reads the right global value.
    for (std::size_t k = 0; k < ind.size(); ++k)
      EXPECT_EQ(data[static_cast<size_t>(ind[k])],
                1000.0 + static_cast<double>(original[k]))
          << "P=" << P << " ref " << k;
  });
}

TEST_P(GatherScatterSweep, ScatterAddAccumulatesAcrossRanks) {
  const auto [P, n] = GetParam();
  Machine m(P);
  m.run([&, n = n](Comm& comm) {
    auto setup = random_distribution(comm, n, 4321 + P + n);
    IndexHashTable hash(setup.table.owned_count(comm.rank()));
    // Each rank contributes +1 to a random set of *distinct* globals.
    Rng rng(static_cast<std::uint64_t>(55 + comm.rank()));
    std::vector<GlobalIndex> ind;
    for (GlobalIndex g = 0; g < n; ++g)
      if (rng.uniform() < 0.4) ind.push_back(g);
    std::vector<GlobalIndex> original = ind;
    const Stamp s = hash.hash(comm, setup.table, ind);
    Schedule sched = build_schedule(comm, hash, StampExpr::only(s));

    std::vector<double> data(static_cast<size_t>(hash.local_extent()), 0.0);
    for (GlobalIndex i : ind) data[static_cast<size_t>(i)] += 1.0;
    scatter_add<double>(comm, sched, data);

    // Ground truth: how many ranks contributed to each global?
    std::vector<std::uint8_t> mine(static_cast<size_t>(n), 0);
    for (GlobalIndex g : original) mine[static_cast<size_t>(g)] = 1;
    std::vector<std::uint8_t> all = comm.allgatherv<std::uint8_t>(mine);
    for (std::size_t i = 0; i < setup.my_globals.size(); ++i) {
      const GlobalIndex g = setup.my_globals[i];
      double expect = 0;
      for (int r = 0; r < P; ++r)
        expect += all[static_cast<size_t>(r) * static_cast<size_t>(n) +
                      static_cast<size_t>(g)];
      EXPECT_EQ(data[i], expect) << "global " << g;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GatherScatterSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(40, 250)));

TEST(Schedule, MergedEqualsUnionOfIndividualFetches) {
  Machine m(4);
  m.run([](Comm& comm) {
    auto setup = random_distribution(comm, 200, 9);
    IndexHashTable hash(setup.table.owned_count(comm.rank()));
    Rng rng(static_cast<std::uint64_t>(3 + comm.rank()));
    std::vector<GlobalIndex> ia(60), ib(60);
    for (auto& g : ia) g = static_cast<GlobalIndex>(rng.below(200));
    for (auto& g : ib) g = static_cast<GlobalIndex>(rng.below(200));
    const Stamp sa = hash.hash(comm, setup.table, ia);
    const Stamp sb = hash.hash(comm, setup.table, ib);

    Schedule merged =
        build_schedule(comm, hash, StampExpr::merged({sa, sb}));
    Schedule only_a = build_schedule(comm, hash, StampExpr::only(sa));
    Schedule inc_b =
        build_schedule(comm, hash, StampExpr::incremental(sb, sa));

    // Merged fetch total == sched_A total + incremental total (union).
    EXPECT_EQ(merged.recv_total(comm.rank()),
              only_a.recv_total(comm.rank()) + inc_b.recv_total(comm.rank()));
    // And the merged gather is never larger than two separate schedules.
    Schedule only_b = build_schedule(comm, hash, StampExpr::only(sb));
    EXPECT_LE(merged.recv_total(comm.rank()),
              only_a.recv_total(comm.rank()) +
                  only_b.recv_total(comm.rank()));
  });
}

TEST(Schedule, IncrementalThenBaseCoversMergedGather) {
  // Gathering with sched_A then inc_schedB must deliver every element that
  // the merged schedule would — the paper's reuse pattern for multi-phase
  // loops (Figure 5).
  Machine m(3);
  m.run([](Comm& comm) {
    auto setup = random_distribution(comm, 120, 17);
    IndexHashTable hash(setup.table.owned_count(comm.rank()));
    Rng rng(static_cast<std::uint64_t>(21 + comm.rank()));
    std::vector<GlobalIndex> ia(40), ib(40);
    for (auto& g : ia) g = static_cast<GlobalIndex>(rng.below(120));
    for (auto& g : ib) g = static_cast<GlobalIndex>(rng.below(120));
    std::vector<GlobalIndex> orig_ia = ia, orig_ib = ib;
    const Stamp sa = hash.hash(comm, setup.table, ia);
    const Stamp sb = hash.hash(comm, setup.table, ib);

    Schedule sched_a = build_schedule(comm, hash, StampExpr::only(sa));
    Schedule inc_b = build_schedule(comm, hash, StampExpr::incremental(sb, sa));

    std::vector<double> data(static_cast<size_t>(hash.local_extent()), -1.0);
    for (std::size_t i = 0; i < setup.my_globals.size(); ++i)
      data[i] = 7.0 * static_cast<double>(setup.my_globals[i]);
    gather<double>(comm, sched_a, data);
    gather<double>(comm, inc_b, data);

    for (std::size_t k = 0; k < ib.size(); ++k)
      EXPECT_EQ(data[static_cast<size_t>(ib[k])],
                7.0 * static_cast<double>(orig_ib[k]));
    for (std::size_t k = 0; k < ia.size(); ++k)
      EXPECT_EQ(data[static_cast<size_t>(ia[k])],
                7.0 * static_cast<double>(orig_ia[k]));
  });
}

TEST(Schedule, SizesMatchBlockContents) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s = build_schedule(comm, f.hash, StampExpr::only(f.a));
    if (comm.rank() == 0) {
      auto fetch = s.fetch_sizes();
      ASSERT_EQ(fetch.size(), 1u);
      EXPECT_EQ(fetch[0].first, 1);
      EXPECT_EQ(fetch[0].second, 2);
      EXPECT_TRUE(s.send_sizes().empty());
    } else {
      auto send = s.send_sizes();
      ASSERT_EQ(send.size(), 1u);
      EXPECT_EQ(send[0].first, 0);
      EXPECT_EQ(send[0].second, 2);
    }
  });
}

TEST(Schedule, ScatterReplacePropagatesWrites) {
  // Rank that referenced a ghost updates it; scatter pushes the new value
  // back to the owner.
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    Schedule s = build_schedule(comm, f.hash, StampExpr::only(f.a));
    std::vector<double> y(static_cast<size_t>(f.hash.local_extent()), 0.0);
    if (comm.rank() == 0) {
      y[5] = 42.0;  // ghost slot of global 6
      y[6] = 43.0;  // ghost slot of global 8
    }
    scatter<double>(comm, s, y);
    if (comm.rank() == 1) {
      EXPECT_EQ(y[1], 42.0);  // global 6 = offset 1 on rank 1
      EXPECT_EQ(y[3], 43.0);  // global 8 = offset 3
    }
  });
}

TEST(Schedule, EmptyStampProducesEmptySchedule) {
  Machine m(2);
  m.run([](Comm& comm) {
    Fig6 f = setup_figure6(comm);
    // A stamp that matches nothing off-processor: hash an owned-only array.
    std::vector<GlobalIndex> own;
    if (comm.rank() == 0) own = {0, 1};
    const Stamp s = f.hash.hash(comm, f.table, own);
    Schedule sched = build_schedule(comm, f.hash, StampExpr::only(s));
    EXPECT_EQ(sched.recv_total(comm.rank()), 0);
    EXPECT_EQ(sched.send_total(comm.rank()), 0);
    // Executing an empty schedule is a no-op.
    std::vector<double> y(static_cast<size_t>(f.hash.local_extent()), 5.0);
    gather<double>(comm, sched, y);
    for (double v : y) EXPECT_EQ(v, 5.0);
  });
}

}  // namespace
}  // namespace chaos::core
