// Inspector hash-table tests: dedup, in-place index translation, stamps,
// clearing/reuse, slot stability, compaction, and the reuse statistics that
// make adaptive-problem preprocessing cheap.
#include <gtest/gtest.h>

#include "core/hash_table.hpp"

namespace chaos::core {
namespace {

using sim::Comm;
using sim::Machine;

// 10 elements: 0..4 on proc 0, 5..9 on proc 1 (the Figure 6 layout,
// 0-based).
TranslationTable figure6_table(Comm& c) {
  std::vector<int> full{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  return TranslationTable::from_full_map(c, full);
}

TEST(IndexHashTable, TranslatesOwnedToOwnOffsets) {
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    IndexHashTable h(t.owned_count(c.rank()));
    if (c.rank() == 0) {
      std::vector<GlobalIndex> ind{0, 4, 2};
      h.hash(c, t, ind);
      EXPECT_EQ(ind, (std::vector<GlobalIndex>{0, 4, 2}));
      EXPECT_EQ(h.ghost_count(), 0);
    } else {
      std::vector<GlobalIndex> ind{5, 9};
      h.hash(c, t, ind);
      EXPECT_EQ(ind, (std::vector<GlobalIndex>{0, 4}));  // own offsets
    }
  });
}

TEST(IndexHashTable, AssignsGhostSlotsPastOwnedRegion) {
  Machine m(2);
  m.run([](Comm& c) {
    if (c.rank() != 0) {
      auto t = figure6_table(c);
      (void)t;
      return;
    }
    auto t = figure6_table(c);
    IndexHashTable h(5);
    std::vector<GlobalIndex> ind{6, 8, 6};  // two distinct off-proc globals
    h.hash(c, t, ind);
    EXPECT_EQ(ind, (std::vector<GlobalIndex>{5, 6, 5}));  // dedup: 6 -> slot 5
    EXPECT_EQ(h.ghost_count(), 2);
    EXPECT_EQ(h.local_extent(), 7);
  });
}

TEST(IndexHashTable, RehashingIsHitsNotInserts) {
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> a{0, 6, 8};
    h.hash(c, t, a);
    EXPECT_EQ(h.stats().inserts, 3u);
    EXPECT_EQ(h.stats().hits, 0u);
    EXPECT_EQ(h.stats().translations, 3u);

    std::vector<GlobalIndex> b{6, 8, 0, 7};  // 3 old + 1 new
    h.hash(c, t, b);
    EXPECT_EQ(h.stats().inserts, 4u);
    EXPECT_EQ(h.stats().hits, 3u);
    EXPECT_EQ(h.stats().translations, 4u);  // only the new index translated
  });
}

TEST(IndexHashTable, StampsAccumulatePerArray) {
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> a{6, 8};
    std::vector<GlobalIndex> b{6, 7};
    const Stamp sa = h.hash(c, t, a);
    const Stamp sb = h.hash(c, t, b);
    EXPECT_NE(sa, sb);
    EXPECT_EQ(h.find(6)->stamps, sa | sb);
    EXPECT_EQ(h.find(8)->stamps, sa);
    EXPECT_EQ(h.find(7)->stamps, sb);
  });
}

TEST(IndexHashTable, ClearStampKillsExclusiveEntriesOnly) {
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> a{6, 8};
    std::vector<GlobalIndex> b{6, 7};
    const Stamp sa = h.hash(c, t, a);
    const Stamp sb = h.hash(c, t, b);
    (void)sb;
    h.clear_stamp(sa);
    EXPECT_EQ(h.live_entries(), 2u);  // 6 (still stamped b) and 7
    EXPECT_EQ(h.find(8)->stamps, Stamp{0});
  });
}

TEST(IndexHashTable, ClearedStampIsRecycled) {
  // The paper's CHARMM flow: clear the non-bonded stamp, re-hash the new
  // list with the *same* stamp.
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> bonded{6};
    std::vector<GlobalIndex> nb1{7, 8};
    const Stamp sbonded = h.hash(c, t, bonded);
    const Stamp snb1 = h.hash(c, t, nb1);
    h.clear_stamp(snb1);
    std::vector<GlobalIndex> nb2{8, 9};
    const Stamp snb2 = h.hash(c, t, nb2);
    EXPECT_EQ(snb2, snb1);  // recycled bit
    EXPECT_NE(snb2, sbonded);
  });
}

TEST(IndexHashTable, RevivedEntryKeepsItsGhostSlot) {
  // Ghost-slot stability across clear + re-hash: data already gathered to a
  // slot stays addressable by old local indices.
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> a{7, 8};
    const Stamp sa = h.hash(c, t, a);
    const GlobalIndex slot7 = h.find(7)->local_index;
    h.clear_stamp(sa);
    std::vector<GlobalIndex> b{9, 7};
    h.hash(c, t, b);
    EXPECT_EQ(h.find(7)->local_index, slot7);
    // 9 gets a fresh slot (after 7 and 8's retained slots).
    EXPECT_EQ(h.find(9)->local_index, 5 + 2);
    // Re-hash after clear translates only genuinely new indices.
    EXPECT_EQ(h.stats().translations, 3u);
  });
}

TEST(IndexHashTable, CompactReclaimsDeadSlots) {
  Machine m(2);
  m.run([](Comm& c) {
    auto t = figure6_table(c);
    if (c.rank() != 0) return;
    IndexHashTable h(5);
    std::vector<GlobalIndex> a{7, 8};
    std::vector<GlobalIndex> b{9};
    const Stamp sa = h.hash(c, t, a);
    h.hash(c, t, b);
    h.clear_stamp(sa);
    EXPECT_EQ(h.ghost_count(), 3);  // dead slots retained...
    h.compact();
    EXPECT_EQ(h.ghost_count(), 1);  // ...until compact()
    EXPECT_EQ(h.find(9)->local_index, 5);
    EXPECT_EQ(h.find(7), nullptr);
  });
}

TEST(IndexHashTable, ManyIndicesForceTableGrowth) {
  Machine m(2);
  m.run([](Comm& c) {
    std::vector<int> full(4000);
    for (std::size_t g = 0; g < full.size(); ++g)
      full[g] = g < 2000 ? 0 : 1;
    auto t = TranslationTable::from_full_map(c, full);
    IndexHashTable h(t.owned_count(c.rank()));
    std::vector<GlobalIndex> ind;
    for (GlobalIndex g = 0; g < 4000; ++g) ind.push_back(g);
    h.hash(c, t, ind);
    EXPECT_EQ(h.live_entries(), 4000u);
    EXPECT_EQ(h.ghost_count(), 2000);
    // Every translated index is in [0, local_extent).
    for (GlobalIndex i : ind) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, h.local_extent());
    }
  });
}

TEST(IndexHashTable, StampExhaustionThrows) {
  Machine m(1);
  m.run([](Comm& c) {
    std::vector<int> full{0};
    auto t = TranslationTable::from_full_map(c, full);
    IndexHashTable h(1);
    std::vector<GlobalIndex> ind{0};
    for (int i = 0; i < 64; ++i) {
      std::vector<GlobalIndex> copy = ind;
      h.hash(c, t, copy);
    }
    std::vector<GlobalIndex> copy = ind;
    EXPECT_THROW(h.hash(c, t, copy), Error);
  });
}

TEST(StampExpr, MatchingSemantics) {
  const Stamp a = 1, b = 2, c = 4;
  EXPECT_TRUE(StampExpr::only(a).matches(a));
  EXPECT_TRUE(StampExpr::only(a).matches(a | b));
  EXPECT_FALSE(StampExpr::only(a).matches(b));
  EXPECT_TRUE(StampExpr::merged({a, c}).matches(c));
  EXPECT_FALSE(StampExpr::merged({a, c}).matches(b));
  // incremental b-a: in b but not already covered by a
  EXPECT_TRUE(StampExpr::incremental(b, a).matches(b));
  EXPECT_FALSE(StampExpr::incremental(b, a).matches(a | b));
  EXPECT_FALSE(StampExpr::incremental(b, a).matches(a));
}

TEST(IndexHashTable, DistributedTableHashIsCollective) {
  // With a distributed translation table, hash() must work when all ranks
  // call it together, including ranks with empty indirection arrays.
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    std::vector<int> full(64);
    for (std::size_t g = 0; g < full.size(); ++g)
      full[g] = static_cast<int>(g % P);
    part::BlockLayout pages(64, P);
    std::vector<int> slice;
    for (GlobalIndex g = pages.first(c.rank());
         g < pages.first(c.rank()) + pages.size_of(c.rank()); ++g)
      slice.push_back(full[static_cast<size_t>(g)]);
    auto t = TranslationTable::build_distributed(c, slice);

    IndexHashTable h(t.owned_count(c.rank()));
    std::vector<GlobalIndex> ind;
    if (c.rank() == 0) ind = {0, 1, 2, 3, 63};
    h.hash(c, t, ind);
    if (c.rank() == 0) {
      // global 0 owned by rank 0 at offset 0; globals 1,2,3,63 are ghosts.
      EXPECT_EQ(ind[0], 0);
      EXPECT_EQ(h.ghost_count(), 4);
    }
  });
}

}  // namespace
}  // namespace chaos::core
