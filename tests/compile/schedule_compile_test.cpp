// Schedule compilation: run detection units + randomized compiled-vs-
// interpreted bitwise equivalence.
//
// The compiled executor (compile/schedule_plan.hpp) claims to reproduce
// the interpreted executor's byte stream, placement order, and combining
// order exactly. The headline test here is that property, randomized: two
// Runtimes run in lockstep over the same comm — one with schedule
// compilation on (the default), one with it off — against identical
// distributions and reference streams, and every executed direction
// (gather / scatter / scatter_add) must leave element-for-element equal
// arrays on every rank, for replicated AND paged translation, including
// the degenerate schedules (empty, singleton, all-residue) where the
// lowering has no runs to find.
//
// Also covered deterministically:
//   - the lowering itself: maximal-run detection, short runs and
//     zero-stride repeats falling to the (merged) residue, hull bounds
//   - the three executor kernels against hand-walked expectations
//   - carry_patched reusing send-side plans verbatim across a repartition
//   - remap_ghost_locality: the permuted ghost region still localizes and
//     gathers the right global elements, compiled and interpreted alike
//   - the registry counters (compiled_plans, carried_compiled_plans,
//     recompiles_after_repartition) proving both cross-epoch paths ran
//
// Seed count and base are env-overridable so the CI stress label can run
// extra random seeds: CHAOS_COMPILE_SEEDS=10 CHAOS_COMPILE_SEED_BASE=7000
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compile/schedule_plan.hpp"
#include "runtime/runtime.hpp"
#include "support/equivalence.hpp"
#include "support/seeds.hpp"
#include "util/rng.hpp"

namespace chaos {
namespace {

using core::GlobalIndex;
using core::Schedule;
using core::ScheduleBlock;
using sim::Comm;
using sim::Machine;
namespace ts = testing_support;

using testing_support::env_seed_u64;
using testing_support::seed_count;

Schedule one_send_block(std::vector<GlobalIndex> idx) {
  std::vector<ScheduleBlock> send;
  send.push_back(ScheduleBlock{1, std::move(idx)});
  return Schedule(std::move(send), {});
}

// ---- lowering units --------------------------------------------------------

TEST(ScheduleCompile, ContiguousRunLowersToOneMemcpyOp) {
  const compile::SchedulePlan plan =
      compile::SchedulePlan::compile(one_send_block({3, 4, 5, 6, 7, 8}));
  ASSERT_EQ(plan.send().size(), 1u);
  const compile::BlockPlan& b = plan.send()[0];
  ASSERT_EQ(b.ops.size(), 1u);
  EXPECT_EQ(b.ops[0].start, 3);
  EXPECT_EQ(b.ops[0].len, 6);
  EXPECT_EQ(b.ops[0].stride, 1);
  EXPECT_TRUE(b.residue.empty());
  EXPECT_EQ(b.lo, 3);
  EXPECT_EQ(b.hi, 8);
  EXPECT_EQ(plan.stats().run_ops, 1u);
  EXPECT_EQ(plan.stats().run_elements, 6u);
  EXPECT_EQ(plan.stats().residue_elements, 0u);
}

TEST(ScheduleCompile, StridedRunsIncludingDescending) {
  const compile::SchedulePlan up =
      compile::SchedulePlan::compile(one_send_block({0, 3, 6, 9, 12}));
  ASSERT_EQ(up.send()[0].ops.size(), 1u);
  EXPECT_EQ(up.send()[0].ops[0].stride, 3);
  EXPECT_EQ(up.send()[0].ops[0].len, 5);

  const compile::SchedulePlan down =
      compile::SchedulePlan::compile(one_send_block({20, 19, 18, 17, 16}));
  ASSERT_EQ(down.send()[0].ops.size(), 1u);
  EXPECT_EQ(down.send()[0].ops[0].start, 20);
  EXPECT_EQ(down.send()[0].ops[0].stride, -1);
  EXPECT_EQ(down.send()[0].lo, 16);
  EXPECT_EQ(down.send()[0].hi, 20);
}

TEST(ScheduleCompile, ShortRunsAndRepeatsMergeIntoOneResidueOp) {
  // {5,6,7} is below min_run, 42 is isolated, 9,9 is a zero-stride repeat
  // no block copy can express; only {100,104,108,112} survives as a run.
  // Everything before it must land in ONE merged residue op, in wire order.
  const compile::SchedulePlan plan = compile::SchedulePlan::compile(
      one_send_block({5, 6, 7, 42, 9, 9, 100, 104, 108, 112}));
  const compile::BlockPlan& b = plan.send()[0];
  ASSERT_EQ(b.ops.size(), 2u);
  EXPECT_EQ(b.ops[0].stride, 0);
  EXPECT_EQ(b.ops[0].start, 0);
  EXPECT_EQ(b.ops[0].len, 6);
  EXPECT_EQ(b.residue, (std::vector<GlobalIndex>{5, 6, 7, 42, 9, 9}));
  EXPECT_EQ(b.ops[1].stride, 4);
  EXPECT_EQ(b.ops[1].start, 100);
  EXPECT_EQ(b.ops[1].len, 4);
  EXPECT_EQ(plan.stats().residue_elements, 6u);
  EXPECT_EQ(plan.stats().run_elements, 4u);
}

TEST(ScheduleCompile, MinRunOptionMovesTheRunThreshold) {
  compile::Options opt;
  opt.min_run = 3;
  const compile::SchedulePlan plan =
      compile::SchedulePlan::compile(one_send_block({5, 6, 7, 42}), opt);
  const compile::BlockPlan& b = plan.send()[0];
  ASSERT_EQ(b.ops.size(), 2u);
  EXPECT_EQ(b.ops[0].stride, 1);  // len 3 is a run at min_run = 3
  EXPECT_EQ(b.ops[0].len, 3);
  EXPECT_EQ(b.ops[1].stride, 0);
}

TEST(ScheduleCompile, EmptyAndSingletonBlocks) {
  const compile::SchedulePlan empty =
      compile::SchedulePlan::compile(Schedule{});
  EXPECT_TRUE(empty.send().empty());
  EXPECT_TRUE(empty.recv().empty());
  EXPECT_EQ(empty.stats().total_elements, 0u);

  const compile::SchedulePlan blocks = compile::SchedulePlan::compile(
      Schedule(std::vector<ScheduleBlock>{ScheduleBlock{0, {}},
                                          ScheduleBlock{1, {7}}},
               {}));
  EXPECT_TRUE(blocks.send()[0].ops.empty());
  EXPECT_EQ(blocks.send()[0].count, 0);
  ASSERT_EQ(blocks.send()[1].ops.size(), 1u);
  EXPECT_EQ(blocks.send()[1].ops[0].stride, 0);  // singleton -> residue
  EXPECT_EQ(blocks.send()[1].count, 1);
}

// ---- kernel units ----------------------------------------------------------

TEST(ScheduleCompile, KernelsMatchHandWalkedInterpretation) {
  const std::vector<GlobalIndex> idx{4, 5, 6, 7, 30, 2, 11, 9, 7, 5, 3};
  const compile::SchedulePlan plan = compile::SchedulePlan::compile(
      one_send_block(std::vector<GlobalIndex>(idx)));
  const compile::BlockPlan& b = plan.send()[0];
  ASSERT_EQ(b.count, static_cast<GlobalIndex>(idx.size()));

  std::vector<double> src(32);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 1.5 * static_cast<double>(i) + 2.0;

  // pack == src read at idx, in wire order.
  std::vector<double> wire(idx.size());
  compile::pack_block<double>(b, std::span<const double>{src}, wire.data());
  for (std::size_t k = 0; k < idx.size(); ++k)
    EXPECT_EQ(wire[k], src[static_cast<std::size_t>(idx[k])]) << "k=" << k;

  // place == replacement at idx; later wire entries win on duplicates
  // (interpreted order), e.g. idx 7 appears twice.
  std::vector<double> dst(32, -1.0);
  compile::place_block<double>(b, std::as_bytes(std::span<const double>{wire}),
                               std::span<double>{dst});
  std::vector<double> expect_place(32, -1.0);
  for (std::size_t k = 0; k < idx.size(); ++k)
    expect_place[static_cast<std::size_t>(idx[k])] = wire[k];
  EXPECT_TRUE(ts::spans_equal(dst, expect_place, "place_block"));

  // combine == accumulate at idx, in wire order.
  std::vector<double> acc(32, 0.5);
  compile::combine_block<double>(
      b, std::as_bytes(std::span<const double>{wire}), std::span<double>{acc},
      [](double own, double in) { return own + in; });
  std::vector<double> expect_acc(32, 0.5);
  for (std::size_t k = 0; k < idx.size(); ++k)
    expect_acc[static_cast<std::size_t>(idx[k])] += wire[k];
  EXPECT_TRUE(ts::spans_equal(acc, expect_acc, "combine_block"));
}

TEST(ScheduleCompile, CarryPatchedReusesSendSideVerbatim) {
  std::vector<ScheduleBlock> send{ScheduleBlock{1, {2, 3, 4, 5, 9}}};
  std::vector<ScheduleBlock> recv{ScheduleBlock{1, {10, 11, 12, 13}}};
  const Schedule prior_sched(send, recv);
  const compile::SchedulePlan prior = compile::SchedulePlan::compile(prior_sched);

  // A patch rewrites recv-side ghost slots; the send side stays verbatim.
  std::vector<ScheduleBlock> patched_recv{ScheduleBlock{1, {20, 14, 21, 15}}};
  const Schedule patched(send, patched_recv);
  const compile::SchedulePlan carried =
      compile::SchedulePlan::carry_patched(prior, patched);

  ASSERT_EQ(carried.send().size(), prior.send().size());
  EXPECT_EQ(carried.send()[0].ops.size(), prior.send()[0].ops.size());
  EXPECT_EQ(carried.send()[0].residue, prior.send()[0].residue);
  ASSERT_EQ(carried.recv().size(), 1u);
  EXPECT_EQ(carried.recv()[0].count, 4);
  EXPECT_EQ(carried.recv()[0].lo, 14);
  EXPECT_EQ(carried.recv()[0].hi, 21);
}

// ---- randomized compiled-vs-interpreted equivalence ------------------------

/// Reference stream styles the scenario draws from — degenerate shapes
/// (empty, singleton) are explicit cases, not left to chance.
std::vector<GlobalIndex> draw_refs(int style, GlobalIndex n, Rng& rng) {
  std::vector<GlobalIndex> refs;
  switch (style % 4) {
    case 0:  // unstructured: mostly residue
      for (std::size_t j = 0; j < 48; ++j)
        refs.push_back(static_cast<GlobalIndex>(rng.below(
            static_cast<std::uint64_t>(n))));
      break;
    case 1:  // empty reference stream -> empty schedule
      break;
    case 2:  // singleton
      refs.push_back(static_cast<GlobalIndex>(rng.below(
          static_cast<std::uint64_t>(n))));
      break;
    case 3: {  // sorted window -> runs for the lowering to find
      const GlobalIndex len = std::min<GlobalIndex>(n, 32);
      const GlobalIndex start = static_cast<GlobalIndex>(rng.below(
          static_cast<std::uint64_t>(n - len + 1)));
      for (GlobalIndex k = 0; k < len; ++k) refs.push_back(start + k);
      break;
    }
  }
  return refs;
}

/// One randomized scenario: identical irregular distributions and
/// reference streams on a compiled and an interpreted Runtime, every
/// direction executed in lockstep and compared element-for-element,
/// then one repartition round to drive the carried/recompiled plans.
void run_compiled_equivalence_scenario(std::uint64_t seed, bool paged) {
  Rng shape_rng(seed);
  const int P = 2 + static_cast<int>(shape_rng.below(3));
  const GlobalIndex n = 40 + static_cast<GlobalIndex>(shape_rng.below(160));
  const int nloops = 1 + static_cast<int>(shape_rng.below(3));

  Machine m(P);
  m.run([&](Comm& comm) {
    Runtime comp(comm);  // schedule compilation on by default
    Runtime interp(comm);
    interp.set_schedule_compilation(false);
    ASSERT_TRUE(comp.schedule_compilation());

    Rng map_rng(seed * 1000003 + 17);
    std::vector<int> map(static_cast<std::size_t>(n));
    for (int& p : map) p = static_cast<int>(map_rng.below(P));
    DistHandle dc = paged ? comp.irregular_paged(map) : comp.irregular(map);
    DistHandle di = paged ? interp.irregular_paged(map) : interp.irregular(map);

    // Machine-wide style decisions from a rank-identical rng; per-rank
    // reference content from a rank-salted one (cross_epoch idiom).
    Rng global_rng(seed * 31 + 7);
    Rng ref_rng(seed * 7919 + 101 +
                static_cast<std::uint64_t>(comm.rank()) * 65537);

    std::vector<lang::IndirectionArray> inds;
    inds.reserve(static_cast<std::size_t>(nloops));
    std::vector<ScheduleHandle> hc, hi;
    for (int l = 0; l < nloops; ++l) {
      const int style = static_cast<int>(global_rng.below(4));
      inds.emplace_back(draw_refs(style, n, ref_rng));
      hc.push_back(comp.inspect(dc, inds.back()));
      hi.push_back(interp.inspect(di, inds.back()));
    }
    if (nloops >= 2) {  // derived schedules take the entry-cache plan path
      hc.push_back(comp.merge({hc[0], hc[1]}));
      hi.push_back(interp.merge({hi[0], hi[1]}));
      hc.push_back(comp.incremental(hc[1], hc[0]));
      hi.push_back(interp.incremental(hi[1], hi[0]));
    }

    const auto extent_c = static_cast<std::size_t>(comp.local_extent(dc));
    const auto extent_i = static_cast<std::size_t>(interp.local_extent(di));
    ASSERT_EQ(extent_c, extent_i);

    // Integer-valued payloads so combining order cannot hide behind FP
    // noise; ghosts pre-seeded rank-distinct so scatter directions move
    // data the other arm must reproduce exactly.
    std::vector<double> base(extent_c);
    for (std::size_t i = 0; i < base.size(); ++i)
      base[i] = static_cast<double>(3 * i + 17) +
                1024.0 * static_cast<double>(comm.rank());

    for (std::size_t s = 0; s < hc.size(); ++s) {
      for (int dir = 0; dir < 3; ++dir) {
        std::vector<double> a = base, b = base;
        if (dir == 0) {
          comp.gather<double>(hc[s], std::span<double>{a});
          interp.gather<double>(hi[s], std::span<double>{b});
        } else if (dir == 1) {
          comp.scatter<double>(hc[s], std::span<double>{a});
          interp.scatter<double>(hi[s], std::span<double>{b});
        } else {
          comp.scatter_add<double>(hc[s], std::span<double>{a});
          interp.scatter_add<double>(hi[s], std::span<double>{b});
        }
        EXPECT_TRUE(ts::spans_equal(
            a, b,
            "schedule " + std::to_string(s) + " dir " + std::to_string(dir)));
      }
      // One non-8-byte payload per schedule: element size reaches the
      // kernels' memcpy arithmetic.
      std::vector<int> ai(extent_c), bi(extent_c);
      for (std::size_t i = 0; i < extent_c; ++i)
        ai[i] = bi[i] = static_cast<int>(7 * i) + comm.rank();
      comp.gather<int>(hc[s], std::span<int>{ai});
      interp.gather<int>(hi[s], std::span<int>{bi});
      EXPECT_TRUE(ts::spans_equal(ai, bi,
                                  "int gather, schedule " + std::to_string(s)));
    }

    // Repartition round: both arms move to an identical new map, then the
    // loops re-inspect and execute again — the compiled arm's plans are
    // carried (patched schedules) or recompiled (rebuilt ones) and must
    // still match the interpreted arm bitwise.
    std::vector<int> map2 = map;
    for (int& p : map2)
      if (global_rng.below(4) == 0) p = static_cast<int>(global_rng.below(P));
    const DistHandle dc2 = comp.repartition(dc, map2);
    const DistHandle di2 = interp.repartition(di, map2);
    std::vector<ScheduleHandle> hc2, hi2;
    for (int l = 0; l < nloops; ++l) {
      hc2.push_back(comp.inspect(dc2, inds[static_cast<std::size_t>(l)]));
      hi2.push_back(interp.inspect(di2, inds[static_cast<std::size_t>(l)]));
    }
    const auto extent2 = static_cast<std::size_t>(comp.local_extent(dc2));
    ASSERT_EQ(extent2, static_cast<std::size_t>(interp.local_extent(di2)));
    std::vector<double> base2(extent2);
    for (std::size_t i = 0; i < base2.size(); ++i)
      base2[i] = static_cast<double>(5 * i + 3) +
                 512.0 * static_cast<double>(comm.rank());
    for (std::size_t s = 0; s < hc2.size(); ++s) {
      std::vector<double> a = base2, b = base2;
      comp.gather<double>(hc2[s], std::span<double>{a});
      interp.gather<double>(hi2[s], std::span<double>{b});
      comp.scatter_add<double>(hc2[s], std::span<double>{a});
      interp.scatter_add<double>(hi2[s], std::span<double>{b});
      EXPECT_TRUE(ts::spans_equal(
          a, b, "post-repartition schedule " + std::to_string(s)));
    }
  });
}

TEST(ScheduleCompile, RandomizedEquivalenceReplicated) {
  const std::uint64_t seeds = seed_count(5, "CHAOS_COMPILE_SEEDS");
  const std::uint64_t base = env_seed_u64("CHAOS_COMPILE_SEED_BASE", 1);
  for (std::uint64_t s = 0; s < seeds; ++s) {
    SCOPED_TRACE("seed " + std::to_string(base + s));
    run_compiled_equivalence_scenario(base + s, /*paged=*/false);
  }
}

TEST(ScheduleCompile, RandomizedEquivalencePaged) {
  const std::uint64_t seeds = seed_count(3, "CHAOS_COMPILE_SEEDS");
  const std::uint64_t base = env_seed_u64("CHAOS_COMPILE_SEED_BASE", 1);
  for (std::uint64_t s = 0; s < seeds; ++s) {
    SCOPED_TRACE("seed " + std::to_string(base + s));
    run_compiled_equivalence_scenario(base + s, /*paged=*/true);
  }
}

// ---- locality remap --------------------------------------------------------

/// After remap_ghost_locality the ghost region is renumbered, so results
/// are checked two ways: against the interpreted arm run through the SAME
/// deterministic remap, and against ground truth through the loop's
/// re-localized references (data[local_ref[j]] must hold the value of
/// global element refs[j], whatever slot that now is).
TEST(ScheduleCompile, RandomizedLocalityRemapEquivalence) {
  const std::uint64_t seeds = seed_count(3, "CHAOS_COMPILE_SEEDS");
  const std::uint64_t base = env_seed_u64("CHAOS_COMPILE_SEED_BASE", 1);
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = base + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const int P = 3;
    const GlobalIndex n = 96;
    Machine m(P);
    m.run([&](Comm& comm) {
      Runtime comp(comm);
      Runtime interp(comm);
      interp.set_schedule_compilation(false);
      const DistHandle dc = comp.block(n);
      const DistHandle di = interp.block(n);

      Rng ref_rng(seed * 7919 + 211 +
                  static_cast<std::uint64_t>(comm.rank()) * 65537);
      std::vector<GlobalIndex> refs = draw_refs(0, n, ref_rng);
      lang::IndirectionArray ind(refs);
      const LoopHandle lc = comp.bind(dc, ind);
      const LoopHandle li = interp.bind(di, ind);
      const ScheduleHandle hc = comp.inspect(lc);
      const ScheduleHandle hi = interp.inspect(li);

      auto filled = [&](Runtime& rt, DistHandle d) {
        std::vector<double> a(static_cast<std::size_t>(rt.local_extent(d)),
                              -9.0);
        const std::vector<GlobalIndex> own = rt.owned_globals(d);
        for (std::size_t i = 0; i < own.size(); ++i)
          a[i] = static_cast<double>(3 * own[i] + 17);
        return a;
      };

      // Compile, then remap: the pass must invalidate the cached plan and
      // the rewritten schedule must re-verify. Both arms remap so their
      // ghost numbering stays comparable — the pass is deterministic.
      std::vector<double> warm = filled(comp, dc);
      comp.gather<double>(hc, std::span<double>{warm});
      const std::vector<GlobalIndex> perm_c = comp.remap_ghost_locality(dc);
      const std::vector<GlobalIndex> perm_i = interp.remap_ghost_locality(di);
      EXPECT_TRUE(ts::spans_equal(perm_c, perm_i, "remap permutation"));

      std::vector<double> a = filled(comp, dc);
      std::vector<double> b = filled(interp, di);
      comp.gather<double>(hc, std::span<double>{a});
      interp.gather<double>(hi, std::span<double>{b});
      EXPECT_TRUE(ts::spans_equal(a, b, "post-remap gather"));
      comp.scatter_add<double>(hc, std::span<double>{a});
      interp.scatter_add<double>(hi, std::span<double>{b});
      EXPECT_TRUE(ts::spans_equal(a, b, "post-remap scatter_add"));

      // Ground truth through the re-localized references.
      std::vector<double> g = filled(comp, dc);
      comp.gather<double>(hc, std::span<double>{g});
      const std::span<const GlobalIndex> lrefs = comp.local_refs(lc);
      ASSERT_EQ(lrefs.size(), refs.size());
      for (std::size_t j = 0; j < refs.size(); ++j)
        EXPECT_EQ(g[static_cast<std::size_t>(lrefs[j])],
                  static_cast<double>(3 * refs[j] + 17))
            << "ref " << j;
    });
  }
}

// ---- cross-epoch counters --------------------------------------------------

/// A home-stable pattern loop and a probe loop over elements the
/// repartition moves: after the epoch switch the pattern plan must be
/// carried (send side verbatim) and the probe plan recompiled — the
/// registry counters distinguish the two paths. The moved elements are the
/// globally-HIGHEST band: under the ascending-global-order offset
/// convention, moving them appends slots at the gaining rank and truncates
/// the losing rank's tail, so every other element keeps owner and offset
/// (home_stable) — moving a low band would shift offsets machine-wide and
/// force a rebuild of every schedule.
TEST(ScheduleCompile, CrossEpochCarryAndRecompileCounters) {
  const int P = 4;
  const GlobalIndex n = 128;
  const GlobalIndex moved = 16;  // the band [n - 16, n), owned by rank 3
  Machine m(P);
  m.run([&](Comm& comm) {
    Runtime rt(comm);
    const DistHandle d = rt.block(n);

    std::vector<GlobalIndex> pattern_refs, probe_refs;
    for (GlobalIndex g = 16; g < 96; ++g) pattern_refs.push_back(g);
    for (GlobalIndex g = n - moved; g < n; ++g) probe_refs.push_back(g);
    lang::IndirectionArray pattern(pattern_refs), probe(probe_refs);
    const ScheduleHandle h = rt.inspect(d, pattern);
    const ScheduleHandle hp = rt.inspect(d, probe);

    std::vector<double> a(static_cast<std::size_t>(rt.local_extent(d)), 1.0);
    rt.gather<double>(h, std::span<double>{a});   // compiles the pattern plan
    rt.gather<double>(hp, std::span<double>{a});  // compiles the probe plan
    const runtime::ScheduleRegistry::Stats s1 = rt.registry_stats(d);
    EXPECT_GE(s1.compiled_plans, 2u);
    EXPECT_GT(s1.runs_detected, 0u);

    std::vector<int> map2(rt.dist(d).map().begin(), rt.dist(d).map().end());
    for (GlobalIndex g = n - moved; g < n; ++g)
      map2[static_cast<std::size_t>(g)] =
          (map2[static_cast<std::size_t>(g)] + 1) % comm.size();
    const DistHandle d2 = rt.repartition(d, map2);
    const ScheduleHandle h2 = rt.inspect(d2, pattern);
    const ScheduleHandle hp2 = rt.inspect(d2, probe);
    std::vector<double> a2(static_cast<std::size_t>(rt.local_extent(d2)), 1.0);
    rt.gather<double>(h2, std::span<double>{a2});
    rt.gather<double>(hp2, std::span<double>{a2});

    if (comm.rank() == 0) {
      const runtime::ScheduleRegistry::Stats s2 = rt.registry_stats(d2);
      EXPECT_GE(s2.carried_compiled_plans, 1u) << "pattern plan not carried";
      EXPECT_GE(s2.recompiles_after_repartition, 1u)
          << "probe plan not recompiled";
    }
  });
}


// ---- cross-block wire grouping ---------------------------------------------

TEST(ScheduleCompile, WireGroupsFuseConsecutiveSamePeerBlocks) {
  // Hand-built multi-block-per-peer schedule: two consecutive blocks to
  // peer 1 whose runs continue across the boundary, then one block to
  // peer 2. Built schedules emit one block per peer (groups stay empty);
  // this is the shape wire grouping exists for.
  std::vector<ScheduleBlock> send;
  send.push_back(ScheduleBlock{1, {0, 1, 2, 3, 4, 5}});
  send.push_back(ScheduleBlock{1, {6, 7, 8, 9}});
  send.push_back(ScheduleBlock{2, {20, 22, 24, 26}});
  const compile::SchedulePlan plan =
      compile::SchedulePlan::compile(Schedule(std::move(send), {}));

  ASSERT_EQ(plan.send_groups().size(), 2u);  // covers all blocks, in order
  const compile::WireGroup& g0 = plan.send_groups()[0];
  EXPECT_EQ(g0.proc, 1);
  EXPECT_EQ(g0.first, 0u);
  EXPECT_EQ(g0.nblocks, 2u);
  // The boundary pair merged: one segment op spanning 0..9.
  ASSERT_EQ(g0.fused.ops.size(), 1u);
  EXPECT_EQ(g0.fused.ops[0].start, 0);
  EXPECT_EQ(g0.fused.ops[0].len, 10);
  EXPECT_EQ(g0.fused.ops[0].stride, 1);
  EXPECT_EQ(g0.fused.count, 10);
  EXPECT_EQ(plan.stats().cross_block_runs, 1u);

  const compile::WireGroup& g1 = plan.send_groups()[1];
  EXPECT_EQ(g1.proc, 2);
  EXPECT_EQ(g1.first, 2u);
  EXPECT_EQ(g1.nblocks, 1u);

  // No multi-block peer on the recv side: its group list stays empty.
  EXPECT_TRUE(plan.recv_groups().empty());

  // The registry stat: an external compile folds the fusion count into
  // the epoch's counters (what registry_stats() reports to the benches).
  runtime::ScheduleRegistry reg;
  reg.note_external_compile(plan.stats());
  EXPECT_EQ(reg.stats().cross_block_runs, 1u);
}

TEST(ScheduleCompile, SingleBlockPerPeerKeepsGroupListsEmpty) {
  std::vector<ScheduleBlock> send;
  send.push_back(ScheduleBlock{1, {0, 1, 2, 3, 4}});
  send.push_back(ScheduleBlock{2, {10, 11, 12, 13}});
  const compile::SchedulePlan plan =
      compile::SchedulePlan::compile(Schedule(std::move(send), {}));
  EXPECT_TRUE(plan.send_groups().empty());
  EXPECT_EQ(plan.stats().cross_block_runs, 0u);
}

TEST(ScheduleCompile, FusedGroupPackIsBitwiseEqualToPerBlockPacks) {
  // A fuller shape: strided boundary continuation, residue-to-residue
  // concatenation, and a trailing irregular block — the fused plan must
  // reproduce the concatenated per-block wire stream byte for byte.
  std::vector<ScheduleBlock> send;
  send.push_back(ScheduleBlock{3, {0, 2, 4, 6}});       // stride-2 run
  send.push_back(ScheduleBlock{3, {8, 10, 12, 14}});    // continues it
  send.push_back(ScheduleBlock{3, {31, 7, 19, 3}});     // irregular
  send.push_back(ScheduleBlock{3, {23, 5, 29, 11}});    // irregular again
  const Schedule sched(std::move(send), {});
  const compile::SchedulePlan plan = compile::SchedulePlan::compile(sched);

  ASSERT_EQ(plan.send_groups().size(), 1u);
  const compile::WireGroup& g = plan.send_groups()[0];
  EXPECT_EQ(g.nblocks, 4u);
  EXPECT_GE(plan.stats().cross_block_runs, 1u);

  std::vector<double> src(40);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = 1.0 + 0.5 * static_cast<double>(i);

  std::vector<double> fused(static_cast<std::size_t>(g.fused.count), 0.0);
  compile::pack_block<double>(g.fused, src, fused.data());

  std::vector<double> per_block;
  for (std::size_t b = g.first; b < g.first + g.nblocks; ++b) {
    const compile::BlockPlan& bp = plan.send()[b];
    std::vector<double> out(static_cast<std::size_t>(bp.count), 0.0);
    compile::pack_block<double>(bp, src, out.data());
    per_block.insert(per_block.end(), out.begin(), out.end());
  }
  ASSERT_EQ(fused.size(), per_block.size());
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_EQ(fused[i], per_block[i]) << "wire position " << i;
}

}  // namespace
}  // namespace chaos
