// chaos::verify tests: every analyzer rule exercised with a flagged graph
// AND a clean graph, the strict-mode refuse-to-arm contract, and the
// shipped-graphs-clean sweep (every step graph the apps declare must come
// back with zero errors and zero warnings — the same gate the
// chaos-verify CLI enforces in CI).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/charmm/parallel.hpp"
#include "apps/dsmc/parallel.hpp"
#include "balance/policy.hpp"
#include "balance/service.hpp"
#include "lang/array.hpp"
#include "runtime/runtime.hpp"
#include "runtime/step_graph.hpp"
#include "verify/diagnostic.hpp"

namespace chaos {
namespace {

using core::GlobalIndex;
using sim::Comm;
using sim::Machine;
using verify::Diagnostic;
using verify::Severity;

constexpr int kRanks = 4;
constexpr GlobalIndex kN = 48;

using Diags = std::vector<Diagnostic>;

std::size_t count_rule(const Diags& ds, std::string_view rule,
                       Severity sev) {
  std::size_t n = 0;
  for (const Diagnostic& d : ds)
    if (d.rule == rule && d.severity == sev) ++n;
  return n;
}

/// First finding of `rule` at `sev`, or nullptr.
const Diagnostic* find_rule(const Diags& ds, std::string_view rule,
                            Severity sev) {
  for (const Diagnostic& d : ds)
    if (d.rule == rule && d.severity == sev) return &d;
  return nullptr;
}

/// Per-rank reference stream with off-rank refs (one block per peer).
std::vector<GlobalIndex> make_refs(int rank, int salt) {
  const GlobalIndex nper = kN / kRanks;
  std::vector<GlobalIndex> refs;
  for (int p = 0; p < kRanks; ++p) {
    if (p == rank) continue;
    for (int k = 0; k < 3; ++k)
      refs.push_back(static_cast<GlobalIndex>(p) * nper +
                     (static_cast<GlobalIndex>(2 * k + salt) % nper));
  }
  return refs;
}

/// Runs `declare` against a fresh runtime + graph and returns the
/// analyzer's findings (identical on every rank for declaration-level
/// rules; the EXPECTs in the callers run on all ranks).
Diags analyze(const std::function<void(Runtime&, StepGraph&, Comm&)>& declare) {
  Diags out;
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    StepGraph g(rt);
    declare(rt, g, c);
    Diags ds = rt.verify(g);
    if (c.rank() == 0) out = std::move(ds);
  });
  return out;
}

// ---- rule: read-before-gather ----------------------------------------------

TEST(VerifyAnalyzer, ReadBeforeGatherFlagged) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    // 'early' consumes x's ghosts before 'late' gathers them: iteration 1
    // reads value-initialized slots, k>1 reads one-iteration-stale ones.
    g.step("early").uses(x).updates(y).compute([] {});
    g.step("late").reads(x, h).compute([] {});
  });
  const Diagnostic* e =
      find_rule(ds, "read-before-gather", Severity::kError);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->step, "early");
  EXPECT_NE(e->message.find("before its first gather"), std::string::npos);
}

TEST(VerifyAnalyzer, ReadBeforeGatherCleanWhenGatherComesFirst) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.step("gatherer").reads(x, h).compute([] {});
    g.step("consumer").uses(x).updates(y).compute([] {});
  });
  EXPECT_EQ(count_rule(ds, "read-before-gather", Severity::kError), 0u);
}

// ---- rule: dead-scatter ----------------------------------------------------

TEST(VerifyAnalyzer, DeadScatterFlagged) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    // y's contributions ship to owners every iteration; nothing declared
    // ever consumes them.
    g.step("produce").reads(x, h).compute([] {}).writes_add(y, h);
  });
  const Diagnostic* w = find_rule(ds, "dead-scatter", Severity::kWarning);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->step, "produce");
}

TEST(VerifyAnalyzer, DeadScatterCleanWithDeclaredConsumer) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.step("produce").reads(x, h).compute([] {}).writes_add(y, h);
    g.step("consume").uses(y).updates(x).compute([] {});
  });
  EXPECT_EQ(count_rule(ds, "dead-scatter", Severity::kWarning), 0u);
}

// ---- rule: redundant-gather ------------------------------------------------

TEST(VerifyAnalyzer, RedundantGatherSameScheduleFlagged) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, ya, yb;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    ya.assign(x.size(), 0.0);
    yb.assign(x.size(), 0.0);
    // Same array, same schedule, nothing writes x between the posts: the
    // second delivery is provably identical.
    g.step("first").reads(x, h).compute([] {}).writes_add(ya, h);
    g.step("second").reads(x, h).compute([] {}).writes_add(yb, h);
    g.step("consume").uses(ya).uses(yb).updates(x).compute([] {});
  });
  const Diagnostic* w =
      find_rule(ds, "redundant-gather", Severity::kWarning);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->step, "second");
}

TEST(VerifyAnalyzer, RedundantGatherCleanWithInterleavingWrite) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, ya, yb;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    ya.assign(x.size(), 0.0);
    yb.assign(x.size(), 0.0);
    // The mutate step rewrites x's owned values between the two gathers,
    // so the second delivery is genuinely fresh.
    g.step("first").reads(x, h).compute([] {}).writes_add(ya, h);
    g.step("mutate").uses(ya).updates(x).compute([] {});
    g.step("second").reads(x, h).compute([] {}).writes_add(yb, h);
    g.step("consume").uses(yb).compute([] {});
  });
  EXPECT_EQ(count_rule(ds, "redundant-gather", Severity::kWarning), 0u);
  EXPECT_EQ(count_rule(ds, "redundant-gather", Severity::kNote), 0u);
}

TEST(VerifyAnalyzer, RedundantGatherCrossScheduleOverlapNoted) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    // Two schedules over the SAME reference stream: every ghost slot is
    // fetched twice.
    lang::IndirectionArray ind_a(make_refs(c.rank(), 0));
    lang::IndirectionArray ind_b(make_refs(c.rank(), 0));
    const ScheduleHandle ha = rt.inspect(rt.bind(d, ind_a));
    const ScheduleHandle hb = rt.inspect(rt.bind(d, ind_b));
    static thread_local std::vector<double> x, ya, yb;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    ya.assign(x.size(), 0.0);
    yb.assign(x.size(), 0.0);
    g.step("first").reads(x, ha).compute([] {}).writes_add(ya, ha);
    g.step("second").reads(x, hb).compute([] {}).writes_add(yb, hb);
    g.step("consume").uses(ya).uses(yb).updates(x).compute([] {});
  });
  const Diagnostic* note =
      find_rule(ds, "redundant-gather", Severity::kNote);
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("fetched twice"), std::string::npos);
  EXPECT_NE(note->hint.find("rt.merge"), std::string::npos);
}

// ---- rule: race-certification ----------------------------------------------

TEST(VerifyAnalyzer, RaceCertificationRefutesClaimOverSharedReduction) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    // Gather-keyed chunks all accumulating into one shared accumulator:
    // the disjointness claim is provably wrong.
    g.step("halo")
        .reads(x, h)
        .compute_chunks([](ChunkContext&) {})
        .writes_add(y, h)
        .chunk_writes_disjoint();
    g.step("consume").uses(y).updates(x).compute([] {});
  });
  const Diagnostic* e =
      find_rule(ds, "race-certification", Severity::kError);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->message.find("refuted"), std::string::npos);
}

TEST(VerifyAnalyzer, RaceCertificationProvesDisjointScatterPartitions) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    // Every write is a plain scatter riding the chunk-keying schedule:
    // chunk p writes only peer p's recv partition, partitions pairwise
    // disjoint — the claim is PROVABLE from the schedule shape alone.
    // This is the property the TSan CI job can only certify dynamically.
    g.step("halo")
        .reads(x, h)
        .compute_chunks([](ChunkContext&) {})
        .writes(y, h)
        .chunk_writes_disjoint();
    g.step("consume").uses(y).updates(x).compute([] {});
  });
  const Diagnostic* note =
      find_rule(ds, "race-certification", Severity::kNote);
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("PROVEN"), std::string::npos);
  EXPECT_EQ(count_rule(ds, "race-certification", Severity::kError), 0u);
  EXPECT_EQ(count_rule(ds, "race-certification", Severity::kWarning), 0u);
}

TEST(VerifyAnalyzer, RaceCertificationAssumedForOpaqueFixedCountChunks) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm&) {
    const DistHandle d = rt.block(kN);
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    // Fixed-count chunks writing locally: nothing in the declarations
    // shows WHICH slots each chunk writes — the claim stands unproven.
    g.step("cells")
        .uses(x)
        .compute_chunks(4, [](ChunkContext&) {})
        .updates(y)
        .chunk_writes_disjoint();
  });
  const Diagnostic* note =
      find_rule(ds, "race-certification", Severity::kNote);
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("ASSUMED"), std::string::npos);
}

TEST(VerifyAnalyzer, RaceCertificationSilentWithoutArrivalIntent) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm&) {
    const DistHandle d = rt.block(kN);
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    // No set_arrival_driven: the claim licenses nothing, so there is
    // nothing to certify.
    g.step("cells")
        .uses(x)
        .compute_chunks(4, [](ChunkContext&) {})
        .updates(y)
        .chunk_writes_disjoint();
  });
  EXPECT_EQ(count_rule(ds, "race-certification", Severity::kNote), 0u);
  EXPECT_EQ(count_rule(ds, "race-certification", Severity::kError), 0u);
}

// ---- rule: determinism-audit -----------------------------------------------

TEST(VerifyAnalyzer, DeterminismAuditWarnsOnSilentStaticFallback) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    // Conflicted (no claim), no tolerance: the executor will silently run
    // this step on the static path despite the arrival-driven intent.
    g.step("halo")
        .reads(x, h)
        .compute_chunks([](ChunkContext&) {})
        .writes_add(y, h);
    g.step("consume").uses(y).updates(x).compute([] {});
  });
  const Diagnostic* w =
      find_rule(ds, "determinism-audit", Severity::kWarning);
  ASSERT_NE(w, nullptr);
  EXPECT_NE(w->message.find("SILENTLY"), std::string::npos);
}

TEST(VerifyAnalyzer, DeterminismAuditNotesToleranceCertifiedReduction) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm& c) {
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    g.set_tolerance(EquivalenceTolerance{1e-12, 1e-9});
    g.step("halo")
        .reads(x, h)
        .compute_chunks([](ChunkContext&) {})
        .writes_add(y, h);
    g.step("consume").uses(y).updates(x).compute([] {});
  });
  EXPECT_EQ(count_rule(ds, "determinism-audit", Severity::kWarning), 0u);
  const Diagnostic* note =
      find_rule(ds, "determinism-audit", Severity::kNote);
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("1e-12"), std::string::npos);
}

TEST(VerifyAnalyzer, DeterminismAuditNotesUnconsumedTolerance) {
  const Diags ds = analyze([](Runtime& rt, StepGraph& g, Comm&) {
    const DistHandle d = rt.block(kN);
    static thread_local std::vector<double> x, y;
    x.assign(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    y.assign(x.size(), 0.0);
    g.set_arrival_driven(true);
    g.set_tolerance(EquivalenceTolerance{1e-12, 1e-9});
    // Every chunked step claims disjoint writes: the bitwise contract
    // holds and the declared tolerance is dead weight.
    g.step("cells")
        .uses(x)
        .compute_chunks(4, [](ChunkContext&) {})
        .updates(y)
        .chunk_writes_disjoint();
  });
  const Diagnostic* note =
      find_rule(ds, "determinism-audit", Severity::kNote);
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("never consumed"), std::string::npos);
}

// ---- rule: stale-binding ---------------------------------------------------

TEST(VerifyAnalyzer, StaleBindingErrorsOnRetargetedArray) {
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(d, ind);
    Array<double> x(rt, d, "x"), y(rt, d, "y");

    StepGraph g(rt);
    g.step("s").bind(in(x).via(h), update(y)).compute([] {});

    // Retarget x onto a successor epoch WITHOUT retargeting the graph:
    // the binding's revision guard goes stale.
    const DistHandle d2 = rt.repartition(d, std::vector<int>(
        static_cast<std::size_t>(kN), 0));
    const ScheduleHandle plan = rt.plan_remap(d, d2);
    x.retarget(plan, d2);

    const Diags ds = rt.verify(g);  // reports, does not throw
    const Diagnostic* e = find_rule(ds, "stale-binding", Severity::kError);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->array, "x");
    EXPECT_NE(e->message.find("retargeted"), std::string::npos);
  });
}

TEST(VerifyAnalyzer, StaleBindingErrorsOnRetiredSchedule) {
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    std::vector<double> x(static_cast<std::size_t>(rt.local_extent(d)), 0.0);

    StepGraph g(rt);
    g.step("s").reads(x, h).compute([] {});

    const DistHandle d2 = rt.repartition(d, std::vector<int>(
        static_cast<std::size_t>(kN), 0));
    (void)d2;
    rt.retire(d);  // h's epoch is gone

    const Diags ds = rt.verify(g);
    const Diagnostic* e = find_rule(ds, "stale-binding", Severity::kError);
    ASSERT_NE(e, nullptr);
    EXPECT_NE(e->message.find("no longer valid"), std::string::npos);
  });
}

TEST(VerifyAnalyzer, StaleBindingNotesUnguardedRawUnderAutonomicPolicy) {
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    std::vector<double> x(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    std::vector<double> y(x.size(), 0.0);

    balance::Binding b;
    b.dist = d;
    rt.set_balance_policy(
        std::make_unique<balance::Policy>(balance::PolicyConfig{}),
        std::move(b));

    StepGraph g(rt);
    g.step("s").reads(x, h).compute([] {}).writes_add(y, h);
    g.step("c").uses(y).updates(x).compute([] {});

    const Diags ds = rt.verify(g);
    // Raw std::vector bindings carry no revision probe: a rebalance that
    // remaps them could leave the graph stale undetectably.
    EXPECT_GE(count_rule(ds, "stale-binding", Severity::kNote), 1u);
    EXPECT_EQ(count_rule(ds, "stale-binding", Severity::kError), 0u);
  });
}

// ---- strict mode -----------------------------------------------------------

TEST(VerifyStrict, StrictGraphRefusesToArmOnErrorFindings) {
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const ScheduleHandle h = rt.inspect(rt.bind(d, ind));
    std::vector<double> x(static_cast<std::size_t>(rt.local_extent(d)), 0.0);
    std::vector<double> y(x.size(), 0.0);

    StepGraph g(rt);
    g.set_strict(true);
    g.step("early").uses(x).updates(y).compute([] {});
    g.step("late").reads(x, h).compute([] {});

    try {
      g.advance();
      FAIL() << "strict graph armed over an error finding";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("refused to arm"), std::string::npos);
      EXPECT_NE(what.find("read-before-gather"), std::string::npos);
    }
    // The findings stay readable after the refusal.
    EXPECT_TRUE(verify::has_errors(g.last_verification()));
  });
}

TEST(VerifyStrict, StrictGraphArmsWhenCleanAndKeepsReport) {
  Machine m(kRanks);
  m.run([&](Comm& c) {
    Runtime rt(c);
    const DistHandle d = rt.block(kN);
    lang::IndirectionArray ind(make_refs(c.rank(), 0));
    const LoopHandle loop = rt.bind(d, ind);
    const ScheduleHandle h = rt.inspect(loop);
    const std::span<const GlobalIndex> lrefs = rt.local_refs(loop);
    std::vector<double> x(static_cast<std::size_t>(rt.local_extent(d)), 1.0);
    std::vector<double> y(x.size(), 0.0);

    int ran = 0;
    StepGraph g(rt);
    g.set_strict(true);
    g.step("halo").reads(x, h).compute([&] {
      for (GlobalIndex j : lrefs) y[static_cast<std::size_t>(j)] = 1.0;
      ++ran;
    });
    g.step("advance").uses(y).updates(x).compute([&] { ++ran; });

    g.advance();
    g.quiesce();
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(verify::has_errors(g.last_verification()));
  });
}

// ---- diagnostics surface ---------------------------------------------------

TEST(VerifyDiagnostics, RenderNamesSubjectsAndSortsBySeverity) {
  Diagnostic note{"race-certification", Severity::kNote, "halo", "",
                  "claim proven", ""};
  Diagnostic err{"read-before-gather", Severity::kError, "early", "pos",
                 "reads before gather", "reorder the steps"};
  const std::string one = verify::render(err);
  EXPECT_NE(one.find("error[read-before-gather]"), std::string::npos);
  EXPECT_NE(one.find("step 'early'"), std::string::npos);
  EXPECT_NE(one.find("'pos'"), std::string::npos);
  EXPECT_NE(one.find("hint: reorder"), std::string::npos);

  const Diags ds{note, err};
  const std::string all = verify::render(ds);
  EXPECT_LT(all.find("error["), all.find("note["));
  EXPECT_TRUE(verify::has_errors(ds));
  EXPECT_EQ(verify::count(ds, Severity::kNote), 1u);
}

TEST(VerifyDiagnostics, StepGraphAtNamesTheDeclaredSteps) {
  Machine m(1);
  m.run([&](Comm& c) {
    Runtime rt(c);
    std::vector<double> x(8, 0.0), y(8, 0.0);
    StepGraph g(rt);
    g.step("alpha").uses(x).compute([] {});
    g.step("beta").uses(y).compute([] {});
    EXPECT_EQ(&g.at(1), &g.at(1));
    try {
      (void)g.at(2);
      FAIL() << "at(2) out of range must throw";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("alpha"), std::string::npos);
      EXPECT_NE(what.find("beta"), std::string::npos);
    }
  });
}

// ---- shipped graphs stay clean ---------------------------------------------

charmm::ParallelCharmmConfig charmm_cfg(charmm::CharmmShape shape,
                                        bool by_hand) {
  charmm::ParallelCharmmConfig cfg;
  cfg.system = charmm::SystemParams::small(300);
  cfg.shape = shape;
  cfg.declare_by_hand = by_hand;
  cfg.verify_graph = true;
  return cfg;
}

dsmc::ParallelDsmcConfig dsmc_cfg(dsmc::DsmcExecutor executor,
                                  bool by_hand) {
  dsmc::ParallelDsmcConfig cfg;
  cfg.params.nx = 8;
  cfg.params.ny = 8;
  cfg.params.n_particles = 400;
  cfg.executor = executor;
  cfg.declare_by_hand = by_hand;
  cfg.verify_graph = true;
  return cfg;
}

void expect_certified(const Diags& ds, const std::string& label) {
  EXPECT_EQ(verify::count(ds, Severity::kError), 0u)
      << label << ":\n" << verify::render(ds);
  EXPECT_EQ(verify::count(ds, Severity::kWarning), 0u)
      << label << ":\n" << verify::render(ds);
}

TEST(VerifyShippedGraphs, EveryCharmmGraphIsCertified) {
  using charmm::CharmmShape;
  for (const CharmmShape shape :
       {CharmmShape::kStepGraph, CharmmShape::kStepGraphEager,
        CharmmShape::kStepGraphArrival}) {
    for (const bool by_hand : {false, true}) {
      Machine machine(kRanks);
      const auto res = charmm::run_parallel_charmm(
          machine, charmm_cfg(shape, by_hand));
      expect_certified(res.verify_diagnostics,
                       "charmm shape=" +
                           std::to_string(static_cast<int>(shape)) +
                           " by_hand=" + std::to_string(by_hand));
    }
  }
}

TEST(VerifyShippedGraphs, EveryDsmcGraphIsCertified) {
  using dsmc::DsmcExecutor;
  for (const DsmcExecutor ex :
       {DsmcExecutor::kStepGraph, DsmcExecutor::kStepGraphEager,
        DsmcExecutor::kStepGraphArrival}) {
    for (const bool by_hand : {false, true}) {
      Machine machine(kRanks);
      const auto res =
          dsmc::run_parallel_dsmc(machine, dsmc_cfg(ex, by_hand));
      expect_certified(res.verify_diagnostics,
                       "dsmc executor=" +
                           std::to_string(static_cast<int>(ex)) +
                           " by_hand=" + std::to_string(by_hand));
    }
  }
}

}  // namespace
}  // namespace chaos
